// Package flatether models the paper's intradomain comparison point,
// CMU-ETHERNET (Myers, Ng, Zhang: "Rethinking the service model: scaling
// ethernet to a million nodes", HotNets 2004): a flat routing scheme in
// which every host join is flooded network-wide so that *every* router
// learns a shortest-path route for *every* host.
//
// The paper references it twice (§6.2): join overhead "between 37 and
// 181 times more messages" than ROFL, and memory "from 34 to 1200 times
// more" — both consequences of the flood-everything, store-everything
// design that this package implements literally.
package flatether

import (
	"errors"
	"fmt"

	"rofl/internal/ident"
	"rofl/internal/linkstate"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

// Metrics counter names charged by this package.
const (
	MsgJoin = "flatether-join"
	MsgData = "flatether-data"
)

// Errors returned by Network operations.
var (
	ErrDuplicateID = errors.New("flatether: identifier already joined")
	ErrUnknownID   = errors.New("flatether: identifier unknown")
)

// Network is a CMU-ETHERNET-style flat routing domain.
type Network struct {
	LS      *linkstate.Map
	Metrics sim.Metrics

	// hostAt maps every host to its attachment router; conceptually this
	// table is replicated at every router, which is exactly the memory
	// cost the paper charges.
	hostAt map[ident.ID]topology.NodeID
}

// New wraps a router graph.
func New(g *topology.Graph, m sim.Metrics) *Network {
	return &Network{
		LS:      linkstate.New(g, m),
		Metrics: m,
		hostAt:  make(map[ident.ID]topology.NodeID),
	}
}

// JoinHost attaches a host: the join announcement is flooded over every
// link so each router can install a route, costing ~2·|E| messages — the
// source of the 37–181x gap to ROFL's ~4·diameter joins.
func (n *Network) JoinHost(id ident.ID, at topology.NodeID) (int, error) {
	if _, dup := n.hostAt[id]; dup {
		return 0, fmt.Errorf("%w: %s", ErrDuplicateID, id.Short())
	}
	n.hostAt[id] = at
	msgs := 2 * n.LS.Graph().NumEdges()
	n.Metrics.Count(MsgJoin, int64(msgs))
	return msgs, nil
}

// LeaveHost withdraws a host, flooding the withdrawal.
func (n *Network) LeaveHost(id ident.ID) (int, error) {
	if _, ok := n.hostAt[id]; !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownID, id.Short())
	}
	delete(n.hostAt, id)
	msgs := 2 * n.LS.Graph().NumEdges()
	n.Metrics.Count(MsgJoin, int64(msgs))
	return msgs, nil
}

// Route forwards over the shortest path — every router knows every host,
// so stretch is exactly 1.
func (n *Network) Route(from topology.NodeID, dst ident.ID) (int, error) {
	at, ok := n.hostAt[dst]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownID, dst.Short())
	}
	h := n.LS.Hops(from, at)
	if h < 0 {
		return 0, fmt.Errorf("flatether: %s unreachable", dst.Short())
	}
	n.Metrics.Count(MsgData, int64(h))
	return h, nil
}

// MemoryEntriesPerRouter returns the forwarding-state entries each
// router holds: one per host in the network, at every router. ROFL's
// Fig 6c comparison divides this by its own per-router footprint.
func (n *Network) MemoryEntriesPerRouter() int { return len(n.hostAt) }

// NumHosts returns the number of attached hosts.
func (n *Network) NumHosts() int { return len(n.hostAt) }
