package flatether

import (
	"errors"
	"testing"

	"rofl/internal/ident"
	"rofl/internal/sim"
	"rofl/internal/topology"
)

func testNet(t *testing.T) (*Network, *topology.ISP) {
	t.Helper()
	isp := topology.GenISP(topology.ISPConfig{
		Name: "t", Routers: 40, PoPs: 6, BackbonePerPoP: 2, PoPDegree: 2,
		IntraPoPDelay: 0.5, InterPoPDelay: 5, Hosts: 100, ZipfS: 1.2, Seed: 7,
	})
	return New(isp.Graph, sim.NewMetrics()), isp
}

func TestJoinFloodsEverything(t *testing.T) {
	n, isp := testNet(t)
	msgs, err := n.JoinHost(ident.FromString("h"), isp.Access[0])
	if err != nil {
		t.Fatal(err)
	}
	if msgs != 2*isp.Graph.NumEdges() {
		t.Fatalf("join msgs = %d want %d", msgs, 2*isp.Graph.NumEdges())
	}
	if n.Metrics.Counter(MsgJoin) != int64(msgs) {
		t.Fatal("counter mismatch")
	}
	if _, err := n.JoinHost(ident.FromString("h"), isp.Access[1]); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("dup join: %v", err)
	}
}

func TestRouteIsShortestPath(t *testing.T) {
	n, isp := testNet(t)
	id := ident.FromString("h")
	at := isp.Access[5]
	if _, err := n.JoinHost(id, at); err != nil {
		t.Fatal(err)
	}
	from := isp.Backbone[0]
	h, err := n.Route(from, id)
	if err != nil {
		t.Fatal(err)
	}
	if h != n.LS.Hops(from, at) {
		t.Fatalf("hops = %d want shortest %d", h, n.LS.Hops(from, at))
	}
	if _, err := n.Route(from, ident.FromString("ghost")); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown dst: %v", err)
	}
}

func TestMemoryScalesWithHosts(t *testing.T) {
	n, isp := testNet(t)
	for i := 0; i < 50; i++ {
		if _, err := n.JoinHost(ident.FromUint64(uint64(i+1)), isp.Access[i%len(isp.Access)]); err != nil {
			t.Fatal(err)
		}
	}
	if n.MemoryEntriesPerRouter() != 50 || n.NumHosts() != 50 {
		t.Fatalf("memory = %d hosts = %d", n.MemoryEntriesPerRouter(), n.NumHosts())
	}
	if _, err := n.LeaveHost(ident.FromUint64(1)); err != nil {
		t.Fatal(err)
	}
	if n.MemoryEntriesPerRouter() != 49 {
		t.Fatal("leave must shrink the table")
	}
	if _, err := n.LeaveHost(ident.FromUint64(1)); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("double leave: %v", err)
	}
}
