package ident

import (
	"math/rand"
	"testing"
)

// insecureRand adapts math/rand for deterministic key generation in tests.
type insecureRand struct{ r *rand.Rand }

func (i insecureRand) Read(p []byte) (int, error) { return i.r.Read(p) }

func testIdentity(t *testing.T, seed int64) *Identity {
	t.Helper()
	id, err := NewIdentity(insecureRand{rand.New(rand.NewSource(seed))})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestIdentityProofVerifies(t *testing.T) {
	id := testIdentity(t, 1)
	nonce := []byte("router-challenge-123")
	proof := id.Prove(nonce)
	if err := VerifyProof(id.ID(), nonce, proof); err != nil {
		t.Fatalf("honest proof rejected: %v", err)
	}
}

func TestIdentitySpoofRejected(t *testing.T) {
	honest := testIdentity(t, 1)
	attacker := testIdentity(t, 2)
	nonce := []byte("n")
	// Attacker claims the honest label but can only sign with its own key.
	proof := attacker.Prove(nonce)
	if err := VerifyProof(honest.ID(), nonce, proof); err == nil {
		t.Fatal("spoofed label must be rejected: key does not hash to label")
	}
}

func TestIdentityWrongNonceRejected(t *testing.T) {
	id := testIdentity(t, 3)
	proof := id.Prove([]byte("nonce-a"))
	if err := VerifyProof(id.ID(), []byte("nonce-b"), proof); err == nil {
		t.Fatal("replayed proof for a different nonce must fail")
	}
}

func TestIdentityTamperedSignatureRejected(t *testing.T) {
	id := testIdentity(t, 4)
	nonce := []byte("n")
	proof := id.Prove(nonce)
	proof.Sig[0] ^= 0xff
	if err := VerifyProof(id.ID(), nonce, proof); err == nil {
		t.Fatal("tampered signature must fail")
	}
}

func TestIdentityBadKeyLength(t *testing.T) {
	id := testIdentity(t, 5)
	proof := id.Prove([]byte("n"))
	proof.Pub = proof.Pub[:10]
	if err := VerifyProof(id.ID(), []byte("n"), proof); err == nil {
		t.Fatal("truncated key must fail")
	}
}

func TestIdentityIDMatchesKeyHash(t *testing.T) {
	id := testIdentity(t, 6)
	if idOfKey(id.PublicKey()) != id.ID() {
		t.Fatal("label must be the hash of the public key")
	}
}

func TestDistinctIdentitiesDistinctLabels(t *testing.T) {
	a := testIdentity(t, 7)
	b := testIdentity(t, 8)
	if a.ID() == b.ID() {
		t.Fatal("independent identities collided")
	}
}
