package ident

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func id64(v uint64) ID { return FromUint64(v) }

func TestCmpAndLess(t *testing.T) {
	cases := []struct {
		a, b ID
		want int
	}{
		{Zero, Zero, 0},
		{Zero, Max, -1},
		{Max, Zero, 1},
		{id64(1), id64(2), -1},
		{id64(2), id64(1), 1},
		{id64(7), id64(7), 0},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%s,%s)=%d want %d", c.a.Short(), c.b.Short(), got, c.want)
		}
		if got := c.a.Less(c.b); got != (c.want < 0) {
			t.Errorf("Less(%s,%s)=%v", c.a.Short(), c.b.Short(), got)
		}
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b [16]byte) bool {
		x, y := ID(a), ID(b)
		return x.Add(y).Sub(y) == x && x.Sub(y).Add(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddCarriesAcrossBytes(t *testing.T) {
	a := Max
	if got := a.Add(one); got != Zero {
		t.Fatalf("Max+1 = %s, want Zero", got)
	}
	if got := Zero.Sub(one); got != Max {
		t.Fatalf("0-1 = %s, want Max", got)
	}
	if got := Zero.Prev(); got != Max {
		t.Fatalf("Prev(0) = %s, want Max", got)
	}
	if got := Max.Next(); got != Zero {
		t.Fatalf("Next(Max) = %s, want 0", got)
	}
}

func TestDistance(t *testing.T) {
	cases := []struct {
		a, b, want ID
	}{
		{id64(5), id64(9), id64(4)},
		{id64(9), id64(5), Max.Sub(id64(3))}, // wraps: 2^128 - 4
		{id64(7), id64(7), Zero},
		{Zero, Max, Max},
	}
	for _, c := range cases {
		if got := c.a.Distance(c.b); got != c.want {
			t.Errorf("Distance(%s,%s) = %s want %s", c.a.Short(), c.b.Short(), got, c.want)
		}
	}
}

func TestDistanceAsymmetryProperty(t *testing.T) {
	// d(a,b) + d(b,a) == 0 mod 2^128 unless a == b, in which case both are 0.
	f := func(a, b [16]byte) bool {
		x, y := ID(a), ID(b)
		sum := x.Distance(y).Add(y.Distance(x))
		if x == y {
			return sum == Zero && x.Distance(y) == Zero
		}
		return sum == Zero && x.Distance(y) != Zero
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBetween(t *testing.T) {
	cases := []struct {
		x, a, b ID
		want    bool
	}{
		{id64(5), id64(1), id64(9), true},
		{id64(9), id64(1), id64(9), true},  // right-inclusive
		{id64(1), id64(1), id64(9), false}, // left-exclusive
		{id64(0), id64(1), id64(9), false},
		{id64(10), id64(1), id64(9), false},
		// wrapping interval (9, 1]
		{id64(0), id64(9), id64(1), true},
		{id64(1), id64(9), id64(1), true},
		{id64(5), id64(9), id64(1), false},
		{Max, id64(9), id64(1), true},
		// degenerate interval (a, a] is the whole circle minus a
		{id64(3), id64(7), id64(7), true},
		{id64(7), id64(7), id64(7), false},
	}
	for _, c := range cases {
		if got := Between(c.x, c.a, c.b); got != c.want {
			t.Errorf("Between(%s, %s, %s) = %v want %v", c.x.Short(), c.a.Short(), c.b.Short(), got, c.want)
		}
	}
}

func TestBetweenOpen(t *testing.T) {
	if BetweenOpen(id64(9), id64(1), id64(9)) {
		t.Error("BetweenOpen should exclude the right endpoint")
	}
	if !BetweenOpen(id64(5), id64(1), id64(9)) {
		t.Error("interior point should be in open interval")
	}
}

func TestBetweenPartitionProperty(t *testing.T) {
	// For distinct a, b: every x != a is in exactly one of (a,b] and (b,a]
	// ... except that both intervals exclude a and x==a is in (b,a].
	f := func(xr, ar, br [16]byte) bool {
		x, a, b := ID(xr), ID(ar), ID(br)
		if a == b {
			return true
		}
		in1 := Between(x, a, b)
		in2 := Between(x, b, a)
		if x == a {
			return !in1 && in2
		}
		if x == b {
			return in1 && !in2
		}
		return in1 != in2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProgress(t *testing.T) {
	cur, dst := id64(10), id64(100)
	if !Progress(cur, dst, id64(50)) {
		t.Error("50 should be progress from 10 toward 100")
	}
	if !Progress(cur, dst, dst) {
		t.Error("destination itself is legal progress")
	}
	if Progress(cur, dst, id64(101)) {
		t.Error("overshoot must be rejected")
	}
	if Progress(cur, dst, cur) {
		t.Error("staying put is not progress")
	}
	if Progress(dst, dst, id64(50)) {
		t.Error("no progress possible when cur == dst")
	}
}

func TestProgressStrictlyDecreasesDistance(t *testing.T) {
	// The loop-freedom core: any legal hop strictly reduces clockwise
	// distance to the destination.
	f := func(curR, dstR, candR [16]byte) bool {
		cur, dst, cand := ID(curR), ID(dstR), ID(candR)
		if !Progress(cur, dst, cand) {
			return true
		}
		return cand.Distance(dst).Cmp(cur.Distance(dst)) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloserWithoutOvershoot(t *testing.T) {
	cur, dst := id64(10), id64(100)
	cands := []ID{id64(5), id64(40), id64(90), id64(120), id64(100)}
	best, ok := CloserWithoutOvershoot(cur, dst, cands)
	if !ok || best != id64(100) {
		t.Fatalf("best = %s ok=%v, want exactly dst", best.Short(), ok)
	}
	best, ok = CloserWithoutOvershoot(cur, dst, []ID{id64(40), id64(90)})
	if !ok || best != id64(90) {
		t.Fatalf("best = %s, want 90", best.Short())
	}
	if _, ok := CloserWithoutOvershoot(cur, dst, []ID{id64(5), id64(120)}); ok {
		t.Fatal("no candidate should qualify")
	}
	if _, ok := CloserWithoutOvershoot(cur, dst, nil); ok {
		t.Fatal("empty candidate set should not qualify")
	}
}

func TestCloserWithoutOvershootNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		cur, dst := Random(rng), Random(rng)
		cands := make([]ID, 8)
		for j := range cands {
			cands[j] = Random(rng)
		}
		best, ok := CloserWithoutOvershoot(cur, dst, cands)
		if !ok {
			continue
		}
		if best.Distance(dst).Cmp(cur.Distance(dst)) >= 0 {
			t.Fatalf("chosen hop does not reduce distance: cur=%s dst=%s best=%s", cur, dst, best)
		}
		// best must dominate every other legal candidate.
		for _, c := range cands {
			if Progress(cur, dst, c) && c.Distance(dst).Cmp(best.Distance(dst)) < 0 {
				t.Fatalf("candidate %s beats chosen %s", c, best)
			}
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a := id64(0)
	if got := CommonPrefixLen(a, a); got != Bits {
		t.Fatalf("CommonPrefixLen(x,x) = %d want %d", got, Bits)
	}
	b := a
	b[0] = 0x80
	if got := CommonPrefixLen(a, b); got != 0 {
		t.Fatalf("differ in first bit: got %d", got)
	}
	c := a
	c[5] = 0x01
	if got := CommonPrefixLen(a, c); got != 5*8+7 {
		t.Fatalf("got %d want %d", got, 5*8+7)
	}
}

func TestDigitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		id := Random(rng)
		pos := rng.Intn(Digits)
		d := rng.Intn(1 << DigitBits)
		mod := id.WithDigit(pos, d)
		if got := mod.Digit(pos); got != d {
			t.Fatalf("WithDigit/Digit mismatch at %d: got %d want %d", pos, got, d)
		}
		// Other digits untouched.
		for p := 0; p < Digits; p++ {
			if p != pos && mod.Digit(p) != id.Digit(p) {
				t.Fatalf("digit %d changed unexpectedly", p)
			}
		}
	}
}

func TestDigitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Digit should panic on out-of-range index")
		}
	}()
	Zero.Digit(Digits)
}

func TestParseAndString(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		id := Random(rng)
		got, err := Parse(id.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != id {
			t.Fatalf("round trip failed: %s != %s", got, id)
		}
	}
	if _, err := Parse("abc"); err == nil {
		t.Fatal("short string should fail")
	}
	if _, err := Parse("zz000000000000000000000000000000"); err == nil {
		t.Fatal("non-hex string should fail")
	}
}

func TestFromBytesDeterministic(t *testing.T) {
	a := FromString("alpha")
	b := FromString("alpha")
	c := FromString("beta")
	if a != b {
		t.Fatal("FromString must be deterministic")
	}
	if a == c {
		t.Fatal("distinct inputs should map to distinct labels")
	}
}

func TestGroupMembers(t *testing.T) {
	g := GroupFromString("video-service")
	m1 := g.Member(1)
	m2 := g.Member(2)
	if m1 == m2 {
		t.Fatal("distinct suffixes must yield distinct members")
	}
	if !SameGroup(m1, m2) {
		t.Fatal("members of one group must share the prefix")
	}
	if GroupOf(m1) != g {
		t.Fatal("GroupOf must invert Member")
	}
	if Suffix(m1) != 1 || Suffix(m2) != 2 {
		t.Fatalf("Suffix round trip failed: %d %d", Suffix(m1), Suffix(m2))
	}
	other := GroupFromString("other")
	if SameGroup(m1, other.Member(1)) {
		t.Fatal("different groups must not collide")
	}
}

func TestGroupMembersAreContiguousOnRing(t *testing.T) {
	// All members of G sort together: no foreign random ID should fall
	// between two members except with negligible probability — we verify
	// the deterministic part: members sorted by suffix are sorted as IDs.
	g := GroupFromString("g")
	ids := make([]ID, 10)
	for i := range ids {
		ids[i] = g.Member(uint32(i * 1000))
	}
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i].Less(ids[j]) }) {
		t.Fatal("members with increasing suffix must be sorted on the ring")
	}
}

func TestRandomMemberStaysInGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := GroupFromString("anycast")
	for i := 0; i < 100; i++ {
		if GroupOf(g.RandomMember(rng)) != g {
			t.Fatal("random member left the group")
		}
	}
}

func TestLow64(t *testing.T) {
	if got := id64(0xdeadbeef).Low64(); got != 0xdeadbeef {
		t.Fatalf("Low64 = %#x", got)
	}
}

func BenchmarkDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x, y := Random(rng), Random(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Distance(y)
	}
}

func BenchmarkCloserWithoutOvershoot(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	cur, dst := Random(rng), Random(rng)
	cands := make([]ID, 64)
	for i := range cands {
		cands[i] = Random(rng)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CloserWithoutOvershoot(cur, dst, cands)
	}
}

func TestMarshalersRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		id := Random(rng)
		txt, err := id.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back ID
		if err := back.UnmarshalText(txt); err != nil || back != id {
			t.Fatalf("text round trip: %v %v", back, err)
		}
		bin, err := id.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back2 ID
		if err := back2.UnmarshalBinary(bin); err != nil || back2 != id {
			t.Fatalf("binary round trip: %v %v", back2, err)
		}
	}
	var bad ID
	if err := bad.UnmarshalText([]byte("zz")); err == nil {
		t.Fatal("bad text must fail")
	}
	if err := bad.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Fatal("short binary must fail")
	}
}
