package ident

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
	"io"
)

// Identity is a self-certifying endpoint identity (paper §2.1): the
// identifier is the truncated SHA-256 hash of an ed25519 public key, so
// possession of the private key proves ownership of the label. Hosting
// routers authenticate a joining host by challenging it to sign a nonce
// (join_internal line 1, "authenticate(id)").
type Identity struct {
	id   ID
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewIdentity mints a fresh identity from the given entropy source.
func NewIdentity(rng io.Reader) (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("ident: generating key: %w", err)
	}
	return &Identity{id: idOfKey(pub), pub: pub, priv: priv}, nil
}

func idOfKey(pub ed25519.PublicKey) ID {
	sum := sha256.Sum256(pub)
	var id ID
	copy(id[:], sum[:Size])
	return id
}

// ID returns the flat label bound to this identity.
func (i *Identity) ID() ID { return i.id }

// PublicKey returns the public key the label certifies.
func (i *Identity) PublicKey() ed25519.PublicKey { return i.pub }

// Sign signs msg with the identity's private key.
func (i *Identity) Sign(msg []byte) []byte {
	return ed25519.Sign(i.priv, msg)
}

// Proof is the response to an authentication challenge: the public key
// whose hash is the claimed ID, plus a signature over the challenge
// nonce.
type Proof struct {
	Pub ed25519.PublicKey
	Sig []byte
}

// Prove answers a challenge nonce, demonstrating ownership of the label.
func (i *Identity) Prove(nonce []byte) Proof {
	return Proof{Pub: append(ed25519.PublicKey(nil), i.pub...), Sig: i.Sign(nonce)}
}

// VerifyProof checks that proof demonstrates ownership of claimed for the
// given nonce: the public key must hash to the claimed label and the
// signature must verify. This is what prevents ID spoofing at join time
// — "there can be no spoofing of IDs unless the router misbehaves"
// (§2.1), and end-to-end the same check catches a misbehaving router.
func VerifyProof(claimed ID, nonce []byte, proof Proof) error {
	if len(proof.Pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad public key length %d", ErrBadID, len(proof.Pub))
	}
	if idOfKey(proof.Pub) != claimed {
		return fmt.Errorf("%w: public key does not hash to claimed label %s", ErrBadID, claimed.Short())
	}
	if !ed25519.Verify(proof.Pub, nonce, proof.Sig) {
		return fmt.Errorf("%w: signature does not verify", ErrBadID)
	}
	return nil
}
