package ident

import "testing"

func TestInternAssignsDenseHandles(t *testing.T) {
	in := NewIntern()
	ids := []ID{FromString("a"), FromString("b"), FromString("c")}
	for i, id := range ids {
		h := in.Handle(id)
		if h != Handle(i) {
			t.Fatalf("Handle(%s) = %d, want dense %d", id.Short(), h, i)
		}
	}
	if in.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", in.Len(), len(ids))
	}
	// Re-interning returns the same handle, never a new one.
	for i, id := range ids {
		if h := in.Handle(id); h != Handle(i) {
			t.Fatalf("re-intern of %s = %d, want %d", id.Short(), h, i)
		}
	}
	if in.Len() != len(ids) {
		t.Fatalf("Len grew to %d on re-intern", in.Len())
	}
}

func TestInternRoundTrip(t *testing.T) {
	in := NewInternSize(64)
	for i := 0; i < 64; i++ {
		id := FromUint64(uint64(i) * 0x9e3779b97f4a7c15)
		h := in.Handle(id)
		if got := in.ID(h); got != id {
			t.Fatalf("ID(Handle(%s)) = %s", id.Short(), got.Short())
		}
		if lh, ok := in.Lookup(id); !ok || lh != h {
			t.Fatalf("Lookup(%s) = %d,%v want %d,true", id.Short(), lh, ok, h)
		}
	}
	if _, ok := in.Lookup(FromString("never-interned")); ok {
		t.Fatal("Lookup of un-interned ID reported ok")
	}
}

func TestInternIDPanicsOutOfRange(t *testing.T) {
	in := NewIntern()
	in.Handle(FromString("only"))
	for _, h := range []Handle{1, NoHandle} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ID(%d) did not panic", h)
				}
			}()
			in.ID(h)
		}()
	}
}

func TestInternBytesScalesWithEntries(t *testing.T) {
	small := NewInternSize(8)
	big := NewInternSize(8)
	for i := 0; i < 2; i++ {
		small.Handle(FromUint64(uint64(i)))
	}
	for i := 0; i < 8; i++ {
		big.Handle(FromUint64(uint64(i)))
	}
	if small.Bytes() <= 0 || big.Bytes() <= small.Bytes() {
		t.Fatalf("Bytes: small=%d big=%d; want positive and growing", small.Bytes(), big.Bytes())
	}
}
