package ident

import "fmt"

// Handle is a dense 32-bit alias for an interned identifier. Routing
// state that would otherwise store full 128-bit IDs (successor groups,
// predecessor pointers, cache entries, packed source routes) stores
// handles instead — 4 bytes per pointer instead of 16 — and resolves
// them through the Intern table only when the actual label is needed
// (ring-distance comparisons, wire encoding, logs).
//
// Handles are assigned densely from 0 in first-intern order, so they
// double as indices into struct-of-arrays node state: state for the
// node with handle h lives at slot h of every parallel slice.
type Handle uint32

// NoHandle is the sentinel "no pointer" value, analogous to a nil
// Pointer. It is never assigned to an interned identifier.
const NoHandle = Handle(^uint32(0))

// Intern is an append-only table mapping identifiers to dense handles
// and back. It is the single source of truth for the ID⇄handle
// correspondence in a simulation: every subsystem that compacts its
// state onto handles shares one table, so a handle means the same
// identifier everywhere.
//
// The zero value is not usable; construct with NewIntern. Methods are
// not safe for concurrent mutation — intern everything up front (or
// from one goroutine), then share the table read-only across workers.
type Intern struct {
	ids  []ID
	byID map[ID]Handle
}

// NewIntern returns an empty table.
func NewIntern() *Intern { return NewInternSize(0) }

// NewInternSize returns an empty table with capacity for n identifiers
// pre-allocated, so interning n IDs performs no intermediate growth.
func NewInternSize(n int) *Intern {
	return &Intern{
		ids:  make([]ID, 0, n),
		byID: make(map[ID]Handle, n),
	}
}

// Handle returns the dense handle for id, assigning the next free one
// on first sight. It panics if the table would exceed 2^32-1 entries
// (the NoHandle sentinel must stay unused).
func (t *Intern) Handle(id ID) Handle {
	if h, ok := t.byID[id]; ok {
		return h
	}
	h := Handle(len(t.ids))
	if h == NoHandle {
		panic("ident: intern table full")
	}
	t.ids = append(t.ids, id)
	t.byID[id] = h
	return h
}

// Lookup returns the handle for id without assigning one.
func (t *Intern) Lookup(id ID) (Handle, bool) {
	h, ok := t.byID[id]
	return h, ok
}

// ID resolves a handle back to its identifier. It panics on NoHandle or
// an out-of-range handle — both indicate corrupted routing state, never
// valid protocol input.
func (t *Intern) ID(h Handle) ID {
	if int(h) >= len(t.ids) {
		panic(fmt.Sprintf("ident: handle %d out of range (table has %d)", h, len(t.ids)))
	}
	return t.ids[h]
}

// Len returns the number of interned identifiers; handles 0..Len()-1
// are valid.
func (t *Intern) Len() int { return len(t.ids) }

// Bytes estimates the table's resident size: the dense ID slab plus the
// reverse map (entry payload + amortized bucket overhead). Memory
// accounting in the scaling study charges this once per simulation, not
// per node pointer — that is the entire point of interning.
func (t *Intern) Bytes() int {
	const mapOverheadPerEntry = 16 // bucket headers + padding, amortized
	return cap(t.ids)*Size + len(t.byID)*(Size+4+mapOverheadPerEntry)
}
