// Package ident implements ROFL's flat-label namespace: 128-bit
// identifiers arranged on a circle, the clockwise-distance metric that
// greedy routing minimizes, and self-certifying identities whose label is
// a hash of an ed25519 public key (paper §2.1).
//
// The package is the single source of truth for the greedy-routing
// predicate "closest to the destination without overshooting it"
// (Algorithm 2 in the paper); every routing layer — intradomain virtual
// rings, interdomain Canon merging, anycast and multicast delivery —
// reuses Progress and CloserWithoutOvershoot from here so the invariant
// is implemented exactly once.
package ident

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
)

// Size is the length of an identifier in bytes. The paper uses 128-bit
// labels throughout its evaluation (§6.1: "Each host is assigned a
// 128-bit ID").
const Size = 16

// Bits is the identifier length in bits.
const Bits = Size * 8

// ID is a flat label: an opaque 128-bit value interpreted as a point on a
// circular namespace of size 2^128. IDs have no semantics (no location,
// no hierarchy); all routing operates on clockwise namespace distance.
type ID [Size]byte

// Zero is the all-zero identifier, the origin of the circular namespace.
// Partition repair (paper §3.2) distributes the live ID closest to Zero.
var Zero ID

// Max is the all-ones identifier, the immediate predecessor of Zero on
// the circle.
var Max = ID{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// FromBytes derives an ID by hashing arbitrary bytes with SHA-256 and
// truncating to 128 bits. This is how self-certifying labels are minted
// from public keys, and how deterministic test fixtures are built.
func FromBytes(b []byte) ID {
	sum := sha256.Sum256(b)
	var id ID
	copy(id[:], sum[:Size])
	return id
}

// FromString derives an ID from a string via FromBytes.
func FromString(s string) ID { return FromBytes([]byte(s)) }

// FromUint64 places v in the low 64 bits of an otherwise-zero ID. It is
// intended for tests and examples where human-readable ring positions
// matter more than uniform spread.
func FromUint64(v uint64) ID {
	var id ID
	binary.BigEndian.PutUint64(id[8:], v)
	return id
}

// Low64 returns the low 64 bits of the identifier.
func (id ID) Low64() uint64 { return binary.BigEndian.Uint64(id[8:]) }

// Random draws an ID uniformly at random from the namespace using rng.
func Random(rng *rand.Rand) ID {
	var id ID
	// rand.Rand has no error path; Read always fills the slice.
	rng.Read(id[:])
	return id
}

// Parse decodes a 32-hex-digit string into an ID.
func Parse(s string) (ID, error) {
	var id ID
	if len(s) != 2*Size {
		return id, fmt.Errorf("ident: want %d hex digits, got %d", 2*Size, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("ident: %w", err)
	}
	copy(id[:], b)
	return id, nil
}

// String renders the full identifier as lowercase hex.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Short renders the leading 4 bytes, enough to tell ring neighbors apart
// in logs and test failures.
func (id ID) Short() string { return hex.EncodeToString(id[:4]) + "…" }

// IsZero reports whether id is the all-zero identifier.
func (id ID) IsZero() bool { return id == Zero }

// Cmp compares two identifiers as 128-bit big-endian integers, returning
// -1, 0, or +1. Linear order is only meaningful for tie-breaking and
// sorted storage; routing must use Distance / Between, which respect the
// circular topology.
func (id ID) Cmp(other ID) int {
	for i := 0; i < Size; i++ {
		switch {
		case id[i] < other[i]:
			return -1
		case id[i] > other[i]:
			return 1
		}
	}
	return 0
}

// Less reports id < other in linear order.
func (id ID) Less(other ID) bool { return id.Cmp(other) < 0 }

// Add returns id + other mod 2^128.
func (id ID) Add(other ID) ID {
	var out ID
	var carry uint16
	for i := Size - 1; i >= 0; i-- {
		s := uint16(id[i]) + uint16(other[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out
}

// Sub returns id - other mod 2^128.
func (id ID) Sub(other ID) ID {
	var out ID
	var borrow int16
	for i := Size - 1; i >= 0; i-- {
		d := int16(id[i]) - int16(other[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}

// Next returns the identifier immediately clockwise of id (id+1).
func (id ID) Next() ID { return id.Add(one) }

// Prev returns the identifier immediately counter-clockwise of id (id-1).
func (id ID) Prev() ID { return id.Sub(one) }

var one = func() ID {
	var id ID
	id[Size-1] = 1
	return id
}()

// Distance returns the clockwise distance from id to other: the number of
// namespace positions a packet at id must still cover to reach other,
// i.e. (other - id) mod 2^128. Distance(x, x) == 0.
func (id ID) Distance(other ID) ID { return other.Sub(id) }

// Between reports whether x lies in the half-open clockwise interval
// (a, b]. This is the Chord successor convention: the successor of k is
// the first live ID s with k ∈ (pred(s), s], equivalently
// Between(k, pred, s). When a == b the interval is the entire circle
// minus a's own slot wrapped onto itself, so any x != a qualifies —
// a ring with one member is its own successor for every other key.
func Between(x, a, b ID) bool {
	if a == b {
		return x != a
	}
	da := a.Distance(x)
	db := a.Distance(b)
	return da.Cmp(Zero) > 0 && da.Cmp(db) <= 0
}

// BetweenOpen reports whether x lies strictly inside the clockwise
// interval (a, b).
func BetweenOpen(x, a, b ID) bool {
	return Between(x, a, b) && x != b
}

// Progress reports whether forwarding from cur to candidate makes greedy
// progress toward dst without overshooting: candidate ∈ (cur, dst]. This
// is the legality test of Algorithm 2 — a router may only hand a packet
// to a pointer that is closer to the destination in clockwise distance
// and not past it, which is what guarantees loop freedom and eventual
// delivery along successor pointers in steady state.
func Progress(cur, dst, candidate ID) bool {
	if cur == dst {
		return false // already at the destination's slot
	}
	return Between(candidate, cur, dst)
}

// CloserWithoutOvershoot returns the element of candidates that is
// closest to dst among those making legal greedy progress from cur, and
// whether any candidate qualified. Ties (identical distance) keep the
// earliest candidate, making the choice deterministic for a given slice
// order.
func CloserWithoutOvershoot(cur, dst ID, candidates []ID) (ID, bool) {
	var best ID
	found := false
	var bestDist ID
	for _, c := range candidates {
		if !Progress(cur, dst, c) {
			continue
		}
		d := c.Distance(dst)
		if !found || d.Cmp(bestDist) < 0 {
			best, bestDist, found = c, d, true
		}
	}
	return best, found
}

// CommonPrefixLen returns the number of leading bits shared by a and b,
// in [0, Bits]. Prefix finger tables (paper §4.1) key their rows on this
// value.
func CommonPrefixLen(a, b ID) int {
	for i := 0; i < Size; i++ {
		x := a[i] ^ b[i]
		if x == 0 {
			continue
		}
		n := i * 8
		for mask := byte(0x80); mask != 0; mask >>= 1 {
			if x&mask != 0 {
				return n
			}
			n++
		}
	}
	return Bits
}

// DigitBits is the width of one finger-table digit. With 4-bit digits an
// identifier has 32 digit positions, matching the Bamboo/Pastry layout
// the paper adopts for proximity fingers.
const DigitBits = 4

// Digits is the number of digit positions per identifier.
const Digits = Bits / DigitBits

// Digit returns the i-th most significant DigitBits-wide digit of id,
// with i in [0, Digits).
func (id ID) Digit(i int) int {
	if i < 0 || i >= Digits {
		panic(fmt.Sprintf("ident: digit index %d out of range", i))
	}
	b := id[i/2]
	if i%2 == 0 {
		return int(b >> 4)
	}
	return int(b & 0x0f)
}

// WithDigit returns a copy of id whose i-th digit is replaced by d. It is
// used to compute the target region for finger-table slot (i, d).
func (id ID) WithDigit(i, d int) ID {
	if d < 0 || d >= 1<<DigitBits {
		panic(fmt.Sprintf("ident: digit value %d out of range", d))
	}
	out := id
	b := out[i/2]
	if i%2 == 0 {
		b = (b & 0x0f) | byte(d)<<4
	} else {
		b = (b & 0xf0) | byte(d)
	}
	out[i/2] = b
	return out
}

// --- Group identifiers (paper §5.1–5.2) ---------------------------------
//
// Anycast and multicast reuse the flat namespace by giving every member
// of a group G an ID of the form (G, x): a shared GroupPrefixLen-bit
// prefix derived from the group name and a per-member suffix x. Routers
// need no special state: routing toward any (G, y) greedily lands on some
// member of G, because all members are contiguous on the circle.

// GroupPrefixLen is the number of bits identifying the group; the
// remaining SuffixLen bits are the member suffix.
const GroupPrefixLen = 96

// SuffixLen is the number of bits in a group-member suffix.
const SuffixLen = Bits - GroupPrefixLen

// Group is the shared prefix of an anycast/multicast group.
type Group [GroupPrefixLen / 8]byte

// GroupFromString derives a Group by hashing a name.
func GroupFromString(name string) Group {
	sum := sha256.Sum256([]byte(name))
	var g Group
	copy(g[:], sum[:len(g)])
	return g
}

// Member builds the identifier (G, x) for suffix x.
func (g Group) Member(x uint32) ID {
	var id ID
	copy(id[:], g[:])
	binary.BigEndian.PutUint32(id[len(g):], x)
	return id
}

// RandomMember builds (G, x) with a uniformly random suffix; senders use
// this to anycast to "any member of G" (§5.2).
func (g Group) RandomMember(rng *rand.Rand) ID {
	return g.Member(rng.Uint32())
}

// GroupOf extracts the group prefix of an identifier.
func GroupOf(id ID) Group {
	var g Group
	copy(g[:], id[:len(g)])
	return g
}

// SameGroup reports whether two identifiers share a group prefix.
func SameGroup(a, b ID) bool { return GroupOf(a) == GroupOf(b) }

// Suffix returns the member suffix of an identifier.
func Suffix(id ID) uint32 {
	return binary.BigEndian.Uint32(id[GroupPrefixLen/8:])
}

// ErrBadID reports a malformed identifier encoding.
var ErrBadID = errors.New("ident: malformed identifier")

// MarshalText implements encoding.TextMarshaler (lowercase hex).
func (id ID) MarshalText() ([]byte, error) {
	return []byte(id.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (id *ID) UnmarshalText(b []byte) error {
	parsed, err := Parse(string(b))
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler (raw 16 bytes).
func (id ID) MarshalBinary() ([]byte, error) {
	out := make([]byte, Size)
	copy(out, id[:])
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (id *ID) UnmarshalBinary(b []byte) error {
	if len(b) != Size {
		return fmt.Errorf("%w: %d bytes, want %d", ErrBadID, len(b), Size)
	}
	copy(id[:], b)
	return nil
}
