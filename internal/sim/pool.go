package sim

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0), fn(1), ..., fn(n-1) across at most workers
// goroutines and returns when all calls have completed. workers <= 1 (or
// n <= 1) runs every call serially on the calling goroutine, reproducing
// single-threaded execution bit for bit.
//
// Trials must be independent: fn may not assume any ordering between
// indices, and any state it touches must be private to the index (its
// own Metrics sink, its own RNG seeded via TrialSeed). Results should be
// written into index-addressed slots so the caller can assemble them
// deterministically afterwards, typically folding per-trial Metrics
// together with Metrics.Merge in index order.
//
// A panic inside any trial is captured and re-raised on the calling
// goroutine after the remaining workers drain, matching the serial
// failure mode of the experiment drivers.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  interface{}
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicV == nil {
								panicV = r
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}

// TrialSeed derives the RNG seed for one trial of a multi-trial
// experiment from the experiment's base seed: base*1e6 + trial. Every
// trial seeds its own rand.Rand from this at trial start, so results
// depend only on (base, trial) — never on which worker ran the trial or
// in what order — and the same configuration reproduces byte-identical
// tables at any worker count.
//
// Paired arms of a comparison (a baseline simulated against ROFL on the
// same topology, or join strategies racing over the same workload) share
// the trial index of their group so both sides see the identical
// workload sequence.
func TrialSeed(base int64, trial int) int64 {
	return base*1_000_000 + int64(trial)
}
