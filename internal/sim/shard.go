package sim

import (
	"math"
	"sort"
)

// This file extends the discrete-event substrate from parallel *trials*
// (ForEach + Metrics.Merge, one independent Engine per trial) to a
// parallel *single network*: one simulated system whose nodes are
// sharded across per-core workers, exchanging events at virtual-clock
// barriers, with results provably independent of the shard count.
//
// The design is a conservative (lookahead-based) parallel discrete-event
// simulation specialized to the actor model the ring protocols already
// fit:
//
//   - A node is a dense uint32 handle (ident.Handle by convention).
//     All mutable protocol state is owned by exactly one node, and a
//     node is owned by exactly one shard, so no locks are needed.
//   - Events are plain value Msgs — no closures, no pointers — stored
//     in per-shard slab-backed heaps and outboxes whose backing arrays
//     are reused for the lifetime of the run. After warm-up the event
//     loop performs no allocation (the hotpath analyzer guards the
//     Send/push/pop path).
//   - Every message between *different* nodes takes at least Lookahead
//     virtual time; self-messages (timers) may use any delay. The run
//     advances in windows of Lookahead, with a barrier between windows
//     at which shards exchange outboxes. A message sent in window k to
//     another node is therefore always delivered in window k+1 or
//     later, so no shard can receive an event in its past.
//   - Messages carry a (Src, Seq) pair — Seq from a per-node send
//     counter — and each shard processes its heap in (At, Src, Seq)
//     order, a total order independent of sharding. A node therefore
//     sees exactly the same delivery sequence at any shard count, which
//     is what makes merged metrics, final state, and the sorted journal
//     byte-identical for 1, 2, or 64 shards.

// Msg is one simulated event: a message between nodes, or a self-timer
// when Src == Dst. It is a pure value — the event heap and cross-shard
// outboxes are flat []Msg slabs, never per-event allocations.
//
// Kind, Hop and Args are opaque to the engine; the Handler gives them
// meaning. Args is sized for a ROFL successor-group advertisement
// (up to 4 pointer handles).
type Msg struct {
	At   Time   // delivery time; filled by Send/Prime
	Src  uint32 // sending node (timers: the node itself)
	Dst  uint32 // receiving node; its owner shard processes the event
	Seq  uint64 // per-Src send counter; (Src, Seq) is unique
	Kind uint16 // handler-defined discriminator
	Hop  uint16 // free for handler use (TTLs, round numbers)
	Args [4]uint32
}

// Handler processes one delivered event. Implementations must only
// touch state owned by m.Dst (plus shard-private sinks reachable
// through sc) and must derive any randomness from per-node state — the
// two rules that make runs shard-count invariant.
type Handler interface {
	HandleMsg(sc *ShardContext, m Msg)
}

// JournalEntry is one handler-recorded protocol transition. Entries
// sort by (At, Src, Seq, Sub) — the same total order events are
// processed in — so the merged journal of a sharded run is
// byte-identical to the single-shard run.
type JournalEntry struct {
	At   Time
	Src  uint32
	Seq  uint64
	Sub  uint32 // ordinal within one handled message
	Kind uint16
	Node uint32
	A, B uint32
}

// ShardContext is the per-shard execution context handed to the
// Handler: the shard's private metrics sink, its event heap and
// outboxes, and the key of the message being handled. One context is
// touched by exactly one worker at a time.
type ShardContext struct {
	// Metrics is the shard-private sink. MergedMetrics folds the sinks
	// in shard order after the run.
	Metrics Metrics

	eng   *ShardedEngine
	shard int
	now   Time

	// Key of the message currently being handled; journal entries
	// recorded while handling it inherit the key so the merged journal
	// reproduces processing order.
	curAt  Time
	curSrc uint32
	curSeq uint64
	sub    uint32

	heap    msgHeap
	outbox  [][]Msg // per-destination-shard send buffers, reused
	journal []JournalEntry
}

// Now returns the virtual time of the event being handled.
func (sc *ShardContext) Now() Time { return sc.now }

// Shard returns this context's shard index.
func (sc *ShardContext) Shard() int { return sc.shard }

// Send schedules m after delay. m.Src must be a node owned by this
// shard (its own per-node send counter provides the Seq). Messages to a
// different node are clamped to at least the engine's Lookahead —
// uniformly, whether or not the destination happens to live on the same
// shard, so timing never depends on the node→shard assignment.
//
//rofllint:hotpath
func (sc *ShardContext) Send(delay Time, m Msg) {
	e := sc.eng
	if delay < 0 {
		delay = 0
	}
	if m.Dst != m.Src && delay < e.lookahead {
		delay = e.lookahead
	}
	m.At = sc.now + delay
	m.Seq = e.seqOf[m.Src]
	e.seqOf[m.Src]++
	d := e.ownerOf(m.Dst)
	if d == sc.shard {
		sc.heap.push(m)
		return
	}
	sc.outbox[d] = append(sc.outbox[d], m)
}

// Journal records one protocol transition keyed to the message being
// handled. It is a no-op unless the engine's journal was enabled —
// million-node runs keep it off; the shard-invariance tests turn it on.
func (sc *ShardContext) Journal(kind uint16, node, a, b uint32) {
	if !sc.eng.journalOn {
		return
	}
	sc.journal = append(sc.journal, JournalEntry{
		At: sc.curAt, Src: sc.curSrc, Seq: sc.curSeq, Sub: sc.sub,
		Kind: kind, Node: node, A: a, B: b,
	})
	sc.sub++
}

// runWindow processes every queued event with At < barrier.
func (sc *ShardContext) runWindow(barrier Time, h Handler) {
	for len(sc.heap) > 0 && sc.heap[0].At < barrier {
		m := sc.heap.pop()
		sc.now = m.At
		sc.curAt, sc.curSrc, sc.curSeq, sc.sub = m.At, m.Src, m.Seq, 0
		h.HandleMsg(sc, m)
	}
}

// ShardedEngine coordinates the windows and barriers of one sharded
// single-network run. Construct with NewSharded, seed initial events
// with Prime, then Run. The engine is not reusable after Run returns.
type ShardedEngine struct {
	handler   Handler
	shards    []*ShardContext
	nshards   int
	lookahead Time
	affinity  []uint32
	seqOf     []uint64 // per-node send counters; only the owner shard touches a node's slot
	journalOn bool
	workers   int
	now       Time
}

// NewSharded builds an engine for nodes dense handles [0, nodes) split
// across the given number of shards. lookahead is the minimum
// inter-node message delay and the barrier window length.
//
// affinity optionally groups nodes: node n is owned by shard
// affinity[n] % shards (nil means n % shards). Grouping every node that
// shares a mutable resource — e.g. all virtual nodes hosted by one
// router, sharing its pointer cache — onto one affinity key keeps that
// resource shard-private at every shard count, which is what lets
// handlers touch it without locks and without breaking invariance.
func NewSharded(nodes, shards int, lookahead Time, affinity []uint32, h Handler) *ShardedEngine {
	if shards < 1 {
		shards = 1
	}
	if lookahead <= 0 {
		lookahead = 1
	}
	e := &ShardedEngine{
		handler:   h,
		nshards:   shards,
		lookahead: lookahead,
		affinity:  affinity,
		seqOf:     make([]uint64, nodes),
		workers:   shards,
	}
	e.shards = make([]*ShardContext, shards)
	for s := range e.shards {
		sc := &ShardContext{Metrics: NewMetrics(), eng: e, shard: s}
		sc.outbox = make([][]Msg, shards)
		e.shards[s] = sc
	}
	return e
}

// ownerOf maps a node to its owning shard.
//
//rofllint:hotpath
func (e *ShardedEngine) ownerOf(node uint32) int {
	a := node
	if e.affinity != nil {
		a = e.affinity[node]
	}
	return int(a % uint32(e.nshards))
}

// Shards returns the shard count.
func (e *ShardedEngine) Shards() int { return e.nshards }

// Lookahead returns the minimum inter-node delay / window length.
func (e *ShardedEngine) Lookahead() Time { return e.lookahead }

// EnableJournal turns on transition journaling (off by default: a
// million-node run would record tens of millions of entries).
func (e *ShardedEngine) EnableJournal() { e.journalOn = true }

// Prime enqueues an initial event before Run, directly into the owner
// shard's heap. The same inter-node Lookahead clamp as Send applies.
// Prime must not be called after Run has started.
func (e *ShardedEngine) Prime(delay Time, m Msg) {
	if delay < 0 {
		delay = 0
	}
	if m.Dst != m.Src && delay < e.lookahead {
		delay = e.lookahead
	}
	m.At = delay
	m.Seq = e.seqOf[m.Src]
	e.seqOf[m.Src]++
	e.shards[e.ownerOf(m.Dst)].heap.push(m)
}

// Run drains every shard to quiescence and returns the final barrier
// time. Windows advance in multiples of Lookahead; empty stretches of
// virtual time are skipped in one step. Within a window the shards run
// in parallel across the worker pool; between windows the engine
// sequentially drains every outbox into the destination heaps (the
// order is irrelevant to the result — heap order is the total
// (At, Src, Seq) key — but draining serially keeps the exchange
// race-free by construction).
func (e *ShardedEngine) Run() Time {
	for {
		min, ok := e.minPending()
		if !ok {
			return e.now
		}
		barrier := Time(math.Floor(float64(min/e.lookahead))+1) * e.lookahead
		ForEach(e.workers, e.nshards, func(s int) {
			e.shards[s].runWindow(barrier, e.handler)
		})
		e.exchange()
		e.now = barrier
	}
}

// exchange drains every shard's outboxes into the destination heaps.
func (e *ShardedEngine) exchange() {
	for _, dst := range e.shards {
		for _, src := range e.shards {
			box := src.outbox[dst.shard]
			for i := range box {
				dst.heap.push(box[i])
			}
			src.outbox[dst.shard] = box[:0]
		}
	}
}

// minPending returns the earliest queued event time across all shards.
func (e *ShardedEngine) minPending() (Time, bool) {
	var min Time
	found := false
	for _, sc := range e.shards {
		if len(sc.heap) == 0 {
			continue
		}
		if !found || sc.heap[0].At < min {
			min, found = sc.heap[0].At, true
		}
	}
	return min, found
}

// MergedMetrics folds the per-shard sinks into a fresh Metrics in shard
// order. Counter totals and sample multisets are shard-count invariant;
// sample *order* within a set is not, and every consumer (Summarize,
// Quantile, CDF) sorts first — the same contract Metrics.Merge
// documents for the trial pool.
func (e *ShardedEngine) MergedMetrics() Metrics {
	m := NewMetrics()
	for _, sc := range e.shards {
		m.Merge(sc.Metrics)
	}
	return m
}

// Journal returns every recorded transition sorted by (At, Src, Seq,
// Sub) — the global processing order — so the rendered journal of a
// run is byte-identical at any shard count.
func (e *ShardedEngine) Journal() []JournalEntry {
	var out []JournalEntry
	for _, sc := range e.shards {
		out = append(out, sc.journal...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Sub < b.Sub
	})
	return out
}

// SplitMix64 advances a per-node PRNG state and returns the next 64
// random bits (Steele et al.'s splitmix64). One uint64 of state per
// node replaces a rand.Rand per node (~5 KB each — 5 GB at a million
// nodes); handlers use it for jitter and sampling so that randomness is
// a pure function of the node's seed and message history, independent
// of sharding.
//
//rofllint:hotpath
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// --- slab-backed event heap ----------------------------------------------

// msgHeap is a monomorphic binary min-heap of Msgs ordered by
// (At, Src, Seq). container/heap would box every event into an
// interface{}; storing values in one growing slab keeps the steady
// state allocation-free (the backing array is reused across the run).
type msgHeap []Msg

func msgLess(a, b *Msg) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}

//rofllint:hotpath
func (h *msgHeap) push(m Msg) {
	*h = append(*h, m)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if msgLess(&s[parent], &s[i]) {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

//rofllint:hotpath
func (h *msgHeap) pop() Msg {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && msgLess(&s[l], &s[min]) {
			min = l
		}
		if r < n && msgLess(&s[r], &s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}
