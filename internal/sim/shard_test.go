package sim

import (
	"fmt"
	"strings"
	"testing"
)

// toyProto is a minimal shard-invariance workload: every node runs a
// few gossip rounds, pinging a ring neighbor and a splitmix-chosen far
// node, journaling every transition, counting messages, and sampling
// delivery times. It exercises cross-node sends (clamped), self-timers
// (sub-lookahead delays), per-node randomness, metrics, and the
// journal — everything the invariance contract covers.
type toyProto struct {
	n    int
	rngs []uint64
}

const (
	tpTimer uint16 = iota
	tpPing
	tpPong
)

const (
	tjSent uint16 = iota
	tjGot
)

func newToy(n int, seed uint64) *toyProto {
	p := &toyProto{n: n, rngs: make([]uint64, n)}
	for i := range p.rngs {
		p.rngs[i] = seed ^ uint64(i)<<1
	}
	return p
}

func (p *toyProto) HandleMsg(sc *ShardContext, m Msg) {
	switch m.Kind {
	case tpTimer:
		u := m.Dst
		far := uint32(SplitMix64(&p.rngs[u]) % uint64(p.n))
		// The neighbor ping continues the round chain (its pong carries
		// Hop); the far ping is a leaf (Hop 0) so load stays linear.
		sc.Metrics.Count("toy-ping", 1)
		sc.Journal(tjSent, u, (u+1)%uint32(p.n), uint32(m.Hop))
		sc.Send(0.25, Msg{Src: u, Dst: (u + 1) % uint32(p.n), Kind: tpPing, Hop: m.Hop})
		if far != u {
			sc.Metrics.Count("toy-ping", 1)
			sc.Journal(tjSent, u, far, 0)
			sc.Send(0.25, Msg{Src: u, Dst: far, Kind: tpPing, Hop: 0})
		}
	case tpPing:
		sc.Metrics.Sample("toy-delivery", float64(sc.Now()))
		sc.Journal(tjGot, m.Dst, m.Src, uint32(m.Hop))
		sc.Send(0.5, Msg{Src: m.Dst, Dst: m.Src, Kind: tpPong, Hop: m.Hop})
	case tpPong:
		if m.Hop > 0 {
			u := m.Dst
			// Deliberately sub-lookahead self-delay: timers are exempt
			// from the clamp.
			d := Time(SplitMix64(&p.rngs[u])%100) / 1000
			sc.Send(d, Msg{Src: u, Dst: u, Kind: tpTimer, Hop: m.Hop - 1})
		}
	}
}

func runToy(t *testing.T, nodes, shards int, affinity []uint32) (string, Metrics, Time) {
	t.Helper()
	p := newToy(nodes, 42)
	e := NewSharded(nodes, shards, 1, affinity, p)
	e.EnableJournal()
	for u := 0; u < nodes; u++ {
		e.Prime(Time(u)/10, Msg{Src: uint32(u), Dst: uint32(u), Kind: tpTimer, Hop: 3})
	}
	end := e.Run()
	var b strings.Builder
	for _, j := range e.Journal() {
		fmt.Fprintf(&b, "%.4f %d %d %d k%d n%d a%d b%d\n", float64(j.At), j.Src, j.Seq, j.Sub, j.Kind, j.Node, j.A, j.B)
	}
	return b.String(), e.MergedMetrics(), end
}

func metricsTable(m Metrics) string {
	var b strings.Builder
	for _, name := range m.CounterNames() {
		fmt.Fprintf(&b, "ctr %s %d\n", name, m.Counter(name))
	}
	for _, name := range m.SampleNames() {
		s := Summarize(m.Samples(name))
		fmt.Fprintf(&b, "smp %s n=%d p50=%.6f p99=%.6f\n", name, s.N, s.P50, s.P99)
	}
	return b.String()
}

// TestShardCountInvariance is the engine-level analogue of PR-9's
// cross-driver gate: the journal, merged metrics table, and final
// virtual time of a sharded run must be byte-identical for 1, 2, and 8
// shards, with and without an affinity grouping.
func TestShardCountInvariance(t *testing.T) {
	for _, affinity := range [][]uint32{nil, makeAffinity(37, 5)} {
		ref, refM, refEnd := runToy(t, 37, 1, affinity)
		if !strings.Contains(ref, "k1") {
			t.Fatal("reference run recorded no deliveries; workload is vacuous")
		}
		for _, shards := range []int{2, 3, 8} {
			j, m, end := runToy(t, 37, shards, affinity)
			if j != ref {
				t.Fatalf("journal diverged at %d shards (affinity=%v):\n--- 1 shard ---\n%s\n--- %d shards ---\n%s",
					shards, affinity != nil, excerptDiff(ref, j), shards, excerptDiff(j, ref))
			}
			if got, want := metricsTable(m), metricsTable(refM); got != want {
				t.Fatalf("metrics diverged at %d shards:\n%s\nvs\n%s", shards, got, want)
			}
			if end != refEnd {
				t.Fatalf("final time diverged at %d shards: %v vs %v", shards, end, refEnd)
			}
		}
	}
}

func makeAffinity(n, keys int) []uint32 {
	a := make([]uint32, n)
	for i := range a {
		a[i] = uint32((i * 7) % keys)
	}
	return a
}

// excerptDiff returns the first few lines where a and b differ.
func excerptDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			hi := i + 3
			if hi > len(al) {
				hi = len(al)
			}
			return fmt.Sprintf("first divergence at line %d:\n%s", i, strings.Join(al[i:hi], "\n"))
		}
	}
	return fmt.Sprintf("length differs: %d vs %d lines", len(al), len(bl))
}

// TestShardedLookaheadClamp: inter-node messages are clamped to at
// least the lookahead — uniformly, even when src and dst share a shard
// — while self-messages keep their short delays.
func TestShardedLookaheadClamp(t *testing.T) {
	var times []Time
	h := handlerFunc(func(sc *ShardContext, m Msg) {
		times = append(times, sc.Now())
		if m.Kind == 0 {
			sc.Send(0.01, Msg{Src: m.Dst, Dst: (m.Dst + 1) % 2, Kind: 1}) // inter-node: clamps to 1
			sc.Send(0.01, Msg{Src: m.Dst, Dst: m.Dst, Kind: 2})           // timer: stays 0.01
		}
	})
	e := NewSharded(2, 1, 1, nil, h)
	e.Prime(0, Msg{Src: 0, Dst: 0, Kind: 0})
	e.Run()
	want := []Time{0, 0.01, 1}
	if len(times) != len(want) {
		t.Fatalf("got %d events (%v), want %v", len(times), times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("event %d at t=%v, want %v (order %v)", i, times[i], want[i], times)
		}
	}
}

type handlerFunc func(sc *ShardContext, m Msg)

func (f handlerFunc) HandleMsg(sc *ShardContext, m Msg) { f(sc, m) }

// TestShardedHeapOrder: events with identical delivery times are
// processed in (Src, Seq) order, the tiebreak that makes processing
// order a total order independent of arrival path.
func TestShardedHeapOrder(t *testing.T) {
	var h msgHeap
	h.push(Msg{At: 5, Src: 2, Seq: 0})
	h.push(Msg{At: 5, Src: 1, Seq: 1})
	h.push(Msg{At: 5, Src: 1, Seq: 0})
	h.push(Msg{At: 4, Src: 9, Seq: 9})
	got := []Msg{h.pop(), h.pop(), h.pop(), h.pop()}
	want := []Msg{
		{At: 4, Src: 9, Seq: 9},
		{At: 5, Src: 1, Seq: 0},
		{At: 5, Src: 1, Seq: 1},
		{At: 5, Src: 2, Seq: 0},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestShardedSteadyStateAllocs: after the first window has sized the
// heaps and outboxes, the event loop must not allocate. This is the
// runtime check backing the hotpath analyzer's static one.
func TestShardedSteadyStateAllocs(t *testing.T) {
	p := newToy(64, 7)
	e := NewSharded(64, 1, 1, nil, p)
	for u := 0; u < 64; u++ {
		e.Prime(Time(u)/100, Msg{Src: uint32(u), Dst: uint32(u), Kind: tpTimer, Hop: 64})
	}
	// Warm up: run a slice of the schedule so slabs reach steady size.
	min, _ := e.minPending()
	for i := 0; i < 64; i++ {
		barrier := min + Time(i+1)
		ForEach(1, e.nshards, func(s int) { e.shards[s].runWindow(barrier, e.handler) })
		e.exchange()
	}
	avg := testing.AllocsPerRun(20, func() {
		min, ok := e.minPending()
		if !ok {
			t.Fatal("workload drained during alloc measurement; lengthen it")
		}
		barrier := min + 1
		e.shards[0].runWindow(barrier, e.handler)
		e.exchange()
	})
	// Metrics sampling appends to map-held slices that legitimately
	// regrow; everything else (heap, outboxes, journal off) must be
	// slab-steady. Allow a tiny growth budget rather than zero.
	if avg > 1 {
		t.Fatalf("steady-state window averaged %.1f allocs; event path is allocating", avg)
	}
}
