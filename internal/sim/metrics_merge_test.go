package sim

import (
	"reflect"
	"testing"
)

// mergedFields is the exhaustive list of Metrics fields that Merge
// folds. If you add a field to Metrics, you must extend Merge AND this
// list — the reflection test below fails on any field it doesn't know,
// so a new field can't silently be dropped from merged trial/shard
// tables (the PR-1 worker pool and the PR-10 sharded engine both
// depend on Merge being lossless).
var mergedFields = map[string]bool{
	"counters": true,
	"samples":  true,
}

func TestMergeCoversEveryMetricsField(t *testing.T) {
	mt := reflect.TypeOf(Metrics{})
	for i := 0; i < mt.NumField(); i++ {
		f := mt.Field(i)
		if !mergedFields[f.Name] {
			t.Errorf("Metrics gained field %q: teach Merge to fold it, add a merge-behavior case to TestMergeFoldsAllState, then add it to mergedFields", f.Name)
		}
	}
	for name := range mergedFields {
		if _, ok := mt.FieldByName(name); !ok {
			t.Errorf("mergedFields lists %q but Metrics has no such field; prune the list", name)
		}
	}
}

// TestMergeFoldsAllState checks the merge semantics of every field in
// mergedFields: counters add, sample multisets concatenate (including
// names only one side has), and the source is left untouched.
func TestMergeFoldsAllState(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Count("both", 2)
	b.Count("both", 3)
	b.Count("only-b", 7)
	a.Sample("lat", 1)
	b.Sample("lat", 2)
	b.Sample("lat", 3)
	b.Sample("only-b", 9)

	a.Merge(b)

	if got := a.Counter("both"); got != 5 {
		t.Errorf("merged counter both = %d, want 5", got)
	}
	if got := a.Counter("only-b"); got != 7 {
		t.Errorf("merged counter only-b = %d, want 7", got)
	}
	if got := len(a.Samples("lat")); got != 3 {
		t.Errorf("merged lat has %d samples, want 3", got)
	}
	if got := len(a.Samples("only-b")); got != 1 {
		t.Errorf("merged only-b has %d samples, want 1", got)
	}
	// The source must be untouched (Merge reads, never aliases).
	if got := b.Counter("both"); got != 3 {
		t.Errorf("source counter mutated: %d", got)
	}
	if got := len(b.Samples("lat")); got != 2 {
		t.Errorf("source samples mutated: %d", got)
	}
	// Merged samples must not alias the source's backing array.
	a.Sample("lat", 99)
	if got := len(b.Samples("lat")); got != 2 {
		t.Errorf("merge aliased source sample slice; source now has %d", got)
	}
	// CDF/summary over merged samples sees the full multiset — the
	// min-observation interaction fixed in PR 1 must survive merging.
	s := Summarize(a.Samples("lat"))
	if s.N != 4 || s.Min != 1 {
		t.Errorf("merged summary = count %d min %v, want 4 and 1", s.N, s.Min)
	}
}
