// Package sim provides the deterministic discrete-event substrate the
// ROFL evaluation runs on: a virtual clock, an event heap, a seeded RNG,
// and the message accounting the paper's figures are built from.
//
// The paper measures join overhead and convergence cost in
// "network-level messages" — one control message traversing k physical
// links counts as k packets (§6.1) — and join latency as the critical
// path of parallel control messages over weighted links (§6.2, Fig 5c).
// Engine exposes exactly those quantities, so every experiment driver is
// a pure function of (topology, workload, seed).
//
// Two parallel execution modes keep that purity:
//
//   - ForEach + Metrics.Merge run independent trials (one Engine per
//     seed) across a worker pool; tables are byte-identical at any
//     worker count because trial seeds derive from the trial index.
//   - ShardedEngine (shard.go) parallelizes a single network: nodes are
//     sharded across workers that exchange messages at virtual-clock
//     barriers every Lookahead window, and runs are byte-identical at
//     any shard count. See ExampleShardedEngine and SCALING.md.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Time is virtual time in milliseconds. Link weights are interpreted as
// one-way latencies in the same unit.
type Time float64

// Engine is a single-threaded discrete-event scheduler. The zero value is
// not usable; construct with NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64 // tie-breaker: FIFO among same-time events
	rng     *rand.Rand
	Metrics Metrics
}

// NewEngine returns an engine whose RNG is seeded deterministically.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:     rand.New(rand.NewSource(seed)),
		Metrics: NewMetrics(),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic RNG.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Schedule enqueues fn to run after delay. A negative delay is treated as
// zero. Events scheduled for the same instant run in FIFO order.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.queue, &event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Run drains the event queue to completion and returns the final virtual
// time. It is safe to call repeatedly: new events scheduled by handlers
// are processed before Run returns.
func (e *Engine) Run() Time {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// RunUntil processes events with timestamps <= deadline, leaving later
// events queued, and advances the clock to deadline.
func (e *Engine) RunUntil(deadline Time) {
	for e.queue.Len() > 0 && e.queue[0].at <= deadline {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// --- Metrics -------------------------------------------------------------

// Metrics accumulates the quantities the paper's figures report:
// per-category message counts (join, teardown, repair, data, ...) and
// arbitrary sample sets for CDFs (per-join overhead, latency, stretch).
type Metrics struct {
	counters map[string]int64
	samples  map[string][]float64
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() Metrics {
	return Metrics{
		counters: make(map[string]int64),
		samples:  make(map[string][]float64),
	}
}

// Count adds n to the named counter.
func (m Metrics) Count(name string, n int64) { m.counters[name] += n }

// Counter returns the value of the named counter (zero if never touched).
func (m Metrics) Counter(name string) int64 { return m.counters[name] }

// Sample appends one observation to the named sample set.
func (m Metrics) Sample(name string, v float64) {
	m.samples[name] = append(m.samples[name], v)
}

// Samples returns the raw observations for name. The returned slice is
// the live backing store; callers must not mutate it.
func (m Metrics) Samples(name string) []float64 { return m.samples[name] }

// Reset clears all counters and samples.
func (m Metrics) Reset() {
	for k := range m.counters {
		delete(m.counters, k)
	}
	for k := range m.samples {
		delete(m.samples, k)
	}
}

// CounterNames returns the names of all touched counters, sorted.
func (m Metrics) CounterNames() []string {
	names := make([]string, 0, len(m.counters))
	for k := range m.counters {
		//rofllint:ignore determinism sorted before return; map order never escapes
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SampleNames returns the names of all touched sample sets, sorted.
func (m Metrics) SampleNames() []string {
	names := make([]string, 0, len(m.samples))
	for k := range m.samples {
		//rofllint:ignore determinism sorted before return; map order never escapes
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Merge folds other into m: counters add, sample sets concatenate in
// other's recording order. Keys are visited in sorted order, so merging
// the same set of sinks in the same sequence always produces identical
// internal state — the contract the parallel experiment harness relies
// on when it folds per-worker sinks together in trial-index order.
// Counter totals and sample multisets are independent of the merge
// order; only the position of samples within a set depends on it, and
// every consumer (Summarize, Quantile, CDF) sorts first. other is not
// modified.
func (m Metrics) Merge(other Metrics) {
	for _, k := range other.CounterNames() {
		m.counters[k] += other.counters[k]
	}
	for _, k := range other.SampleNames() {
		m.samples[k] = append(m.samples[k], other.samples[k]...)
	}
}

// --- Statistics helpers ---------------------------------------------------

// Summary holds order statistics of a sample set.
type Summary struct {
	N              int
	Min, Max, Mean float64
	P50, P90, P99  float64
}

// Summarize computes order statistics over vs. An empty input yields a
// zero Summary.
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Summary{
		N:    len(s),
		Min:  s[0],
		Max:  s[len(s)-1],
		Mean: sum / float64(len(s)),
		P50:  Quantile(s, 0.50),
		P90:  Quantile(s, 0.90),
		P99:  Quantile(s, 0.99),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// slice, linearly interpolating between the two closest ranks (the R-7
// estimator most plotting libraries default to): position q*(n-1) is
// split into an integer rank and a fraction, and the result blends the
// neighbouring order statistics by that fraction. Exact for the
// endpoints and for positions that land on a rank.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CDF returns (value, cumulative-fraction) pairs suitable for plotting a
// CDF like the paper's Figures 5b, 5c and 8b, downsampled to at most
// points entries. The last pair is always the maximum observation at
// rank n, and with points > 1 the first is always the minimum at rank 1,
// so a downsampled curve spans the full observed range.
func CDF(vs []float64, points int) [][2]float64 {
	if len(vs) == 0 || points <= 0 {
		return nil
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if points > n {
		points = n
	}
	if points == 1 {
		return [][2]float64{{s[n-1], 1}}
	}
	out := make([][2]float64, 0, points)
	out = append(out, [2]float64{s[0], 1 / float64(n)})
	for i := 1; i < points; i++ {
		idx := (i + 1) * n / points
		if idx > n {
			idx = n
		}
		out = append(out, [2]float64{s[idx-1], float64(idx) / float64(n)})
	}
	return out
}

// String renders a summary compactly for logs and experiment tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f p50=%.2f mean=%.2f p90=%.2f p99=%.2f max=%.2f",
		s.N, s.Min, s.P50, s.Mean, s.P90, s.P99, s.Max)
}
