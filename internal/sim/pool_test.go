package sim

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		const n = 57
		var counts [n]int32
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var got []int
	ForEach(1, 5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("workers=1 must run in index order, got %v", got)
		}
	}
	ForEach(4, 0, func(i int) { t.Fatal("n=0 must not call fn") })
}

// The harness contract end to end: per-trial sinks seeded via TrialSeed,
// folded with Merge in index order, must not depend on the worker count.
func TestForEachMergeDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) Metrics {
		const trials = 12
		sinks := make([]Metrics, trials)
		ForEach(workers, trials, func(i int) {
			m := NewMetrics()
			rng := rand.New(rand.NewSource(TrialSeed(42, i)))
			for j := 0; j < 50; j++ {
				m.Count("msgs", int64(rng.Intn(10)))
				m.Sample("lat", rng.Float64())
			}
			sinks[i] = m
		})
		merged := NewMetrics()
		for _, s := range sinks {
			merged.Merge(s)
		}
		return merged
	}
	serial, parallel := run(1), run(8)
	if serial.Counter("msgs") != parallel.Counter("msgs") {
		t.Fatalf("counters diverge: %d vs %d", serial.Counter("msgs"), parallel.Counter("msgs"))
	}
	a, b := serial.Samples("lat"), parallel.Samples("lat")
	if len(a) != len(b) {
		t.Fatalf("sample counts diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample order diverges at %d", i)
		}
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic must surface on the caller")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "trial exploded") {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	ForEach(4, 16, func(i int) {
		if i == 7 {
			panic("trial exploded")
		}
	})
}

func TestTrialSeed(t *testing.T) {
	if TrialSeed(2006, 0) != 2006_000_000 {
		t.Fatalf("TrialSeed(2006, 0) = %d", TrialSeed(2006, 0))
	}
	if TrialSeed(2006, 3) != 2006_000_003 {
		t.Fatalf("TrialSeed(2006, 3) = %d", TrialSeed(2006, 3))
	}
	if TrialSeed(1, 1) == TrialSeed(1, 2) {
		t.Fatal("distinct trials must get distinct seeds")
	}
}
