package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(5, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(3, func() { got = append(got, 2) })
	end := e.Run()
	if end != 5 {
		t.Fatalf("final time = %v want 5", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 5 {
			e.Schedule(1, step)
		}
	}
	e.Schedule(0, step)
	end := e.Run()
	if depth != 5 {
		t.Fatalf("depth = %d want 5", depth)
	}
	if end != 4 {
		t.Fatalf("end = %v want 4", end)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(-10, func() { ran = true })
	if e.Run() != 0 || !ran {
		t.Fatal("negative delay should run at t=0")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, d := range []Time{1, 2, 3, 10} {
		d := d
		e.Schedule(d, func() { got = append(got, d) })
	}
	e.RunUntil(3)
	if len(got) != 3 {
		t.Fatalf("got %v, want first three", got)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v want 3", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d want 1", e.Pending())
	}
	e.Run()
	if len(got) != 4 || e.Now() != 10 {
		t.Fatalf("remaining event not delivered: %v now=%v", got, e.Now())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		e := NewEngine(42)
		var out []float64
		for i := 0; i < 100; i++ {
			e.Schedule(Time(e.Rand().Float64()*10), func() {
				out = append(out, e.Rand().Float64())
			})
		}
		e.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must produce identical traces")
		}
	}
}

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	m.Count("join", 3)
	m.Count("join", 2)
	m.Count("data", 1)
	if m.Counter("join") != 5 || m.Counter("data") != 1 || m.Counter("absent") != 0 {
		t.Fatalf("counters wrong: join=%d data=%d", m.Counter("join"), m.Counter("data"))
	}
	names := m.CounterNames()
	if len(names) != 2 || names[0] != "data" || names[1] != "join" {
		t.Fatalf("names = %v", names)
	}
	m.Reset()
	if m.Counter("join") != 0 {
		t.Fatal("reset should clear counters")
	}
}

func TestMetricsSamples(t *testing.T) {
	m := NewMetrics()
	for _, v := range []float64{3, 1, 2} {
		m.Sample("lat", v)
	}
	if got := m.Samples("lat"); len(got) != 3 {
		t.Fatalf("samples = %v", got)
	}
	m.Reset()
	if m.Samples("lat") != nil {
		t.Fatal("reset should clear samples")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 2.5 {
		t.Fatalf("p50 = %v want 2.5", s.P50)
	}
	zero := Summarize(nil)
	if zero.N != 0 || zero.Mean != 0 {
		t.Fatalf("empty summary = %+v", zero)
	}
}

func TestQuantileBounds(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if Quantile(s, 0) != 1 || Quantile(s, 1) != 5 {
		t.Fatal("quantile endpoints wrong")
	}
	if got := Quantile(s, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		vs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return true
		}
		sort.Float64s(vs)
		a, b := math.Abs(math.Mod(q1, 1)), math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		return Quantile(vs, a) <= Quantile(vs, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	pts := CDF(vs, 5)
	if len(pts) != 5 {
		t.Fatalf("points = %v", pts)
	}
	last := pts[len(pts)-1]
	if last[0] != 10 || last[1] != 1.0 {
		t.Fatalf("last point = %v, want (10, 1.0)", last)
	}
	// Fractions must be nondecreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i][1] < pts[i-1][1] || pts[i][0] < pts[i-1][0] {
			t.Fatalf("CDF not monotone: %v", pts)
		}
	}
	if CDF(nil, 5) != nil || CDF(vs, 0) != nil {
		t.Fatal("degenerate CDF inputs should return nil")
	}
	// More points requested than samples: clamp.
	if got := CDF([]float64{1, 2}, 10); len(got) != 2 {
		t.Fatalf("clamped CDF = %v", got)
	}
}

// Regression for the downsampling bug: the first emitted point used to
// sit at rank len(s)/points, so every downsampled curve started above
// the true minimum.
func TestCDFKeepsMinimumWhenDownsampling(t *testing.T) {
	vs := make([]float64, 100)
	for i := range vs {
		vs[i] = float64(i + 1) // 1..100
	}
	pts := CDF(vs, 10)
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0] != [2]float64{1, 0.01} {
		t.Fatalf("first point = %v, want the minimum at rank 1 (1, 0.01)", pts[0])
	}
	if last := pts[len(pts)-1]; last != [2]float64{100, 1} {
		t.Fatalf("last point = %v, want the maximum (100, 1)", last)
	}
	// Full resolution still enumerates every rank exactly once.
	full := CDF([]float64{3, 1, 2}, 3)
	want := [][2]float64{{1, 1.0 / 3}, {2, 2.0 / 3}, {3, 1}}
	for i := range want {
		if full[i] != want[i] {
			t.Fatalf("full-resolution CDF = %v, want %v", full, want)
		}
	}
	// A single requested point degenerates to the maximum.
	if one := CDF(vs, 1); len(one) != 1 || one[0] != [2]float64{100, 1} {
		t.Fatalf("1-point CDF = %v", one)
	}
}

// Golden values pinning Quantile's linear interpolation between ranks
// (position q*(n-1), R-7), which its doc comment used to misname
// "nearest-rank".
func TestQuantileGoldenValues(t *testing.T) {
	s := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 55},   // position 4.5: halfway between 50 and 60
		{0.90, 91},   // position 8.1: 90*0.9 + 100*0.1
		{0.99, 99.1}, // position 8.91: 90*0.09 + 100*0.91
		{0.25, 32.5}, // position 2.25
		{0.10, 19},   // position 0.9
	} {
		if got := Quantile(s, tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("Quantile(q=%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Quantile([]float64{7}, 0.5); got != 7 {
		t.Fatalf("single-element quantile = %v", got)
	}
}

func TestMetricsMerge(t *testing.T) {
	a := NewMetrics()
	a.Count("join", 3)
	a.Sample("lat", 1)
	a.Sample("lat", 2)
	b := NewMetrics()
	b.Count("join", 4)
	b.Count("data", 1)
	b.Sample("lat", 3)
	b.Sample("stretch", 1.5)

	m := NewMetrics()
	m.Merge(a)
	m.Merge(b)
	if m.Counter("join") != 7 || m.Counter("data") != 1 {
		t.Fatalf("merged counters: join=%d data=%d", m.Counter("join"), m.Counter("data"))
	}
	if got := m.Samples("lat"); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("merged samples = %v, want stable concatenation [1 2 3]", got)
	}
	// Sources must be untouched.
	if len(a.Samples("lat")) != 2 || b.Counter("join") != 4 {
		t.Fatal("Merge must not modify its argument")
	}
}

// Merge is order-independent up to sample ordering: counter totals and
// sample multisets match regardless of which sink folds in first.
func TestMetricsMergeOrderIndependent(t *testing.T) {
	sinks := make([]Metrics, 3)
	for i := range sinks {
		sinks[i] = NewMetrics()
		for j := 0; j <= i; j++ {
			sinks[i].Count("msgs", int64(10*i+j))
			sinks[i].Sample("v", float64(100*i+j))
		}
	}
	fold := func(order []int) Metrics {
		m := NewMetrics()
		for _, i := range order {
			m.Merge(sinks[i])
		}
		return m
	}
	fwd, rev := fold([]int{0, 1, 2}), fold([]int{2, 1, 0})
	if fwd.Counter("msgs") != rev.Counter("msgs") {
		t.Fatalf("counter depends on merge order: %d vs %d", fwd.Counter("msgs"), rev.Counter("msgs"))
	}
	f := append([]float64(nil), fwd.Samples("v")...)
	r := append([]float64(nil), rev.Samples("v")...)
	sort.Float64s(f)
	sort.Float64s(r)
	if len(f) != len(r) {
		t.Fatalf("sample counts differ: %d vs %d", len(f), len(r))
	}
	for i := range f {
		if f[i] != r[i] {
			t.Fatalf("sample multisets differ at %d: %v vs %v", i, f, r)
		}
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.String() == "" {
		t.Fatal("String should render")
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%17), func() {})
		}
		e.Run()
	}
}
