package sim_test

import (
	"fmt"

	"rofl/internal/sim"
)

// ring is a three-node token-passing protocol: each delivery counts a
// hop and forwards the token until its TTL (carried in Hop) runs out.
type ring struct{}

func (ring) HandleMsg(sc *sim.ShardContext, m sim.Msg) {
	sc.Metrics.Count("hops", 1)
	if m.Hop == 0 {
		return
	}
	sc.Send(1, sim.Msg{Src: m.Dst, Dst: (m.Dst + 1) % 3, Kind: 0, Hop: m.Hop - 1})
}

// ExampleShardedEngine runs one network sharded two ways. The merged
// metrics are byte-identical to a single-shard run — the engine's core
// guarantee — so the output does not depend on the shard count.
func ExampleShardedEngine() {
	for _, shards := range []int{1, 2} {
		e := sim.NewSharded(3, shards, 1, nil, ring{})
		e.Prime(0, sim.Msg{Src: 0, Dst: 0, Hop: 5})
		end := e.Run()
		m := e.MergedMetrics()
		fmt.Printf("shards=%d hops=%d end=%v\n", shards, m.Counter("hops"), end)
	}
	// Output:
	// shards=1 hops=6 end=6
	// shards=2 hops=6 end=6
}
