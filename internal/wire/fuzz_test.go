package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeRoundTrip feeds arbitrary bytes to the decoder (it must
// never panic) and, when they parse, re-encodes to verify the codec is
// strict: a successful decode consumes the input exactly — no trailing
// garbage, no non-canonical encodings — so re-encoding must reproduce
// the input byte for byte.
func FuzzDecodeRoundTrip(f *testing.F) {
	seed := samplePacket()
	buf, _ := seed.Marshal()
	f.Add(buf)
	f.Add(append(append([]byte{}, buf...), 0x00)) // trailing byte must be rejected
	f.Add([]byte{})
	f.Add([]byte{Version, byte(TypeData)})
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := p.DecodeFromBytes(data); err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode accepted a non-canonical encoding:\nin:  %x\nout: %x", data, out)
		}
	})
}
