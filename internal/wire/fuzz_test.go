package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeRoundTrip feeds arbitrary bytes to the decoder (it must
// never panic) and, when they parse, re-encodes and re-decodes to verify
// the codec is a lossless fixed point.
func FuzzDecodeRoundTrip(f *testing.F) {
	seed := samplePacket()
	buf, _ := seed.Marshal()
	f.Add(buf)
	f.Add([]byte{})
	f.Add([]byte{Version, byte(TypeData)})
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		if err := p.DecodeFromBytes(data); err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v", err)
		}
		var q Packet
		if err := q.DecodeFromBytes(out); err != nil {
			t.Fatalf("re-encoded packet failed to decode: %v", err)
		}
		out2, err := q.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatal("encode/decode is not a fixed point")
		}
	})
}
