package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"rofl/internal/ident"
)

func samplePacket() *Packet {
	return &Packet{
		Type:       TypeData,
		Flags:      FlagPeered,
		TTL:        200,
		Dst:        ident.FromString("dst"),
		Src:        ident.FromString("src"),
		ReqID:      0xdeadbeefcafe,
		ASRoute:    []uint32{7018, 1239, 3356},
		Capability: []byte{1, 2, 3},
		Payload:    []byte("hello flat world"),
	}
}

func TestRoundTrip(t *testing.T) {
	p := samplePacket()
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != p.EncodedLen() {
		t.Fatalf("len = %d want %d", len(buf), p.EncodedLen())
	}
	var q Packet
	if err := q.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if q.Type != p.Type || q.Flags != p.Flags || q.TTL != p.TTL || q.Dst != p.Dst || q.Src != p.Src || q.ReqID != p.ReqID {
		t.Fatalf("header mismatch: %+v vs %+v", q, p)
	}
	if len(q.ASRoute) != 3 || q.ASRoute[2] != 3356 {
		t.Fatalf("route = %v", q.ASRoute)
	}
	if !bytes.Equal(q.Capability, p.Capability) || !bytes.Equal(q.Payload, p.Payload) {
		t.Fatal("variable sections mismatch")
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(flags, ttl uint8, reqID uint64, route []uint32, capab, payload []byte) bool {
		if len(route) > MaxASRoute {
			route = route[:MaxASRoute]
		}
		if len(capab) > MaxCapability {
			capab = capab[:MaxCapability]
		}
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		p := &Packet{
			Type: TypeJoinRequest, Flags: flags, TTL: ttl, ReqID: reqID,
			Dst: ident.Random(rng), Src: ident.Random(rng),
			ASRoute: route, Capability: capab, Payload: payload,
		}
		buf, err := p.Marshal()
		if err != nil {
			return false
		}
		var q Packet
		if err := q.DecodeFromBytes(buf); err != nil {
			return false
		}
		if q.Dst != p.Dst || q.Src != p.Src || q.Flags != flags || q.TTL != ttl || q.ReqID != reqID {
			return false
		}
		if len(q.ASRoute) != len(route) {
			return false
		}
		for i := range route {
			if q.ASRoute[i] != route[i] {
				return false
			}
		}
		return bytes.Equal(q.Capability, capab) && bytes.Equal(q.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	p := samplePacket()
	buf, _ := p.Marshal()

	var q Packet
	if err := q.DecodeFromBytes(buf[:3]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v", err)
	}
	if err := q.DecodeFromBytes(buf[:len(buf)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short body: %v", err)
	}

	bad := append([]byte(nil), buf...)
	bad[0] = 99
	if err := q.DecodeFromBytes(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}

	bad = append([]byte(nil), buf...)
	bad[1] = 0
	if err := q.DecodeFromBytes(bad); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad type 0: %v", err)
	}
	bad[1] = byte(typeMax)
	if err := q.DecodeFromBytes(bad); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad type max: %v", err)
	}
}

func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var p Packet
	for i := 0; i < 5000; i++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		_ = p.DecodeFromBytes(buf) // must not panic
	}
}

func TestMarshalValidation(t *testing.T) {
	p := samplePacket()
	p.Type = 0
	if _, err := p.Marshal(); !errors.Is(err, ErrBadType) {
		t.Fatalf("zero type: %v", err)
	}
	p = samplePacket()
	p.ASRoute = make([]uint32, MaxASRoute+1)
	if _, err := p.Marshal(); !errors.Is(err, ErrTooLong) {
		t.Fatalf("long route: %v", err)
	}
	p = samplePacket()
	p.Capability = make([]byte, MaxCapability+1)
	if _, err := p.Marshal(); !errors.Is(err, ErrTooLong) {
		t.Fatalf("long capability: %v", err)
	}
	p = samplePacket()
	p.Payload = make([]byte, 0x10000)
	if _, err := p.Marshal(); !errors.Is(err, ErrTooLong) {
		t.Fatalf("long payload: %v", err)
	}
}

func TestPushAS(t *testing.T) {
	var p Packet
	if err := p.PushAS(100); err != nil {
		t.Fatal(err)
	}
	if err := p.PushAS(100); err != nil { // duplicate collapsed
		t.Fatal(err)
	}
	if len(p.ASRoute) != 1 {
		t.Fatalf("route = %v", p.ASRoute)
	}
	if err := p.PushAS(200); err != nil {
		t.Fatal(err)
	}
	if !p.TraversedAS(100) || !p.TraversedAS(200) || p.TraversedAS(300) {
		t.Fatal("TraversedAS wrong")
	}
	p.ASRoute = make([]uint32, MaxASRoute)
	if err := p.PushAS(999); !errors.Is(err, ErrTooLong) {
		t.Fatalf("full route: %v", err)
	}
}

func TestDecodeReusesBuffers(t *testing.T) {
	p := samplePacket()
	buf, _ := p.Marshal()
	var q Packet
	q.ASRoute = make([]uint32, 0, 16)
	q.Payload = make([]byte, 0, 64)
	q.Capability = make([]byte, 0, 16)
	for i := 0; i < 3; i++ {
		if err := q.DecodeFromBytes(buf); err != nil {
			t.Fatal(err)
		}
	}
	if len(q.ASRoute) != 3 || len(q.Payload) != len(p.Payload) {
		t.Fatal("repeat decode corrupted state")
	}
	// Mutating the source buffer must not change the decoded packet.
	buf[len(buf)-1] ^= 0xff
	if q.Payload[len(q.Payload)-1] == buf[len(buf)-1] {
		t.Fatal("decoded payload aliases input buffer")
	}
}

func TestTypeString(t *testing.T) {
	for typ := TypeData; typ < typeMax; typ++ {
		if typ.String() == "" {
			t.Fatalf("type %d has no name", typ)
		}
	}
	if Type(200).String() != "type(200)" {
		t.Fatal("unknown type rendering wrong")
	}
}

func TestPacketString(t *testing.T) {
	if samplePacket().String() == "" {
		t.Fatal("String must render")
	}
}

func BenchmarkMarshal(b *testing.B) {
	p := samplePacket()
	buf := make([]byte, 0, p.EncodedLen())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		if _, err := p.AppendTo(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	p := samplePacket()
	buf, _ := p.Marshal()
	var q Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := q.DecodeFromBytes(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalAlloc measures Marshal into a fresh buffer — the
// allocating path send uses when no buffer is pooled.
func BenchmarkMarshalAlloc(b *testing.B) {
	p := samplePacket()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeFresh measures decoding into a zero Packet each time —
// the cost before the read loop reused its packet across datagrams.
func BenchmarkDecodeFresh(b *testing.B) {
	buf, _ := samplePacket().Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var q Packet
		if err := q.DecodeFromBytes(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodeRejectsTrailingBytes pins the strictness of the decoder:
// the wire format is exact-length, so any bytes after the declared
// payload are a malformed datagram, not ignorable padding.
func TestDecodeRejectsTrailingBytes(t *testing.T) {
	buf, err := samplePacket().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	if err := p.DecodeFromBytes(buf); err != nil {
		t.Fatalf("exact packet must decode: %v", err)
	}
	for _, extra := range [][]byte{{0x00}, {0xff}, make([]byte, 100)} {
		bad := append(append([]byte{}, buf...), extra...)
		err := p.DecodeFromBytes(bad)
		if !errors.Is(err, ErrTrailing) {
			t.Fatalf("%d trailing bytes: want ErrTrailing, got %v", len(extra), err)
		}
	}
}

func TestClone(t *testing.T) {
	p := samplePacket()
	q := p.Clone()
	if !bytes.Equal(mustMarshal(t, p), mustMarshal(t, q)) {
		t.Fatal("clone differs from original")
	}
	// Mutating the original's slices must not reach the clone.
	p.Payload[0] ^= 0xff
	p.Capability[0] ^= 0xff
	p.ASRoute[0]++
	r := samplePacket()
	if !bytes.Equal(mustMarshal(t, q), mustMarshal(t, r)) {
		t.Fatal("clone shares backing arrays with the original")
	}
}

func mustMarshal(t *testing.T, p *Packet) []byte {
	t.Helper()
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMarshalAllocs pins the encoder's allocation budget: AppendTo into
// a pre-sized buffer must not allocate at all, and Marshal exactly once
// (the output buffer).
func TestMarshalAllocs(t *testing.T) {
	p := samplePacket()
	buf := make([]byte, 0, p.EncodedLen())
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := p.AppendTo(buf[:0]); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("AppendTo allocates %v per op with a sized buffer; want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := p.Marshal(); err != nil {
			t.Fatal(err)
		}
	}); avg > 1 {
		t.Fatalf("Marshal allocates %v per op; want ≤1 (the output buffer)", avg)
	}
}

// TestDecodeSteadyStateAllocs pins the decoder at zero allocations when
// the destination packet is reused, the contract the overlay read loop
// relies on.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	buf, err := samplePacket().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	if err := p.DecodeFromBytes(buf); err != nil { // warm slice capacities
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if err := p.DecodeFromBytes(buf); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("DecodeFromBytes allocates %v per op into a reused packet; want 0", avg)
	}
}
