package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"rofl/internal/ident"
)

func samplePacket() *Packet {
	return &Packet{
		Type:       TypeData,
		Flags:      FlagPeered,
		TTL:        200,
		Dst:        ident.FromString("dst"),
		Src:        ident.FromString("src"),
		ReqID:      0xdeadbeefcafe,
		ASRoute:    []uint32{7018, 1239, 3356},
		Capability: []byte{1, 2, 3},
		Payload:    []byte("hello flat world"),
	}
}

func TestRoundTrip(t *testing.T) {
	p := samplePacket()
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != p.EncodedLen() {
		t.Fatalf("len = %d want %d", len(buf), p.EncodedLen())
	}
	var q Packet
	if err := q.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if q.Type != p.Type || q.Flags != p.Flags || q.TTL != p.TTL || q.Dst != p.Dst || q.Src != p.Src || q.ReqID != p.ReqID {
		t.Fatalf("header mismatch: %+v vs %+v", q, p)
	}
	if len(q.ASRoute) != 3 || q.ASRoute[2] != 3356 {
		t.Fatalf("route = %v", q.ASRoute)
	}
	if !bytes.Equal(q.Capability, p.Capability) || !bytes.Equal(q.Payload, p.Payload) {
		t.Fatal("variable sections mismatch")
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(flags, ttl uint8, reqID uint64, route []uint32, capab, payload []byte) bool {
		if len(route) > MaxASRoute {
			route = route[:MaxASRoute]
		}
		if len(capab) > MaxCapability {
			capab = capab[:MaxCapability]
		}
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		p := &Packet{
			Type: TypeJoinRequest, Flags: flags, TTL: ttl, ReqID: reqID,
			Dst: ident.Random(rng), Src: ident.Random(rng),
			ASRoute: route, Capability: capab, Payload: payload,
		}
		buf, err := p.Marshal()
		if err != nil {
			return false
		}
		var q Packet
		if err := q.DecodeFromBytes(buf); err != nil {
			return false
		}
		if q.Dst != p.Dst || q.Src != p.Src || q.Flags != flags || q.TTL != ttl || q.ReqID != reqID {
			return false
		}
		if len(q.ASRoute) != len(route) {
			return false
		}
		for i := range route {
			if q.ASRoute[i] != route[i] {
				return false
			}
		}
		return bytes.Equal(q.Capability, capab) && bytes.Equal(q.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	p := samplePacket()
	buf, _ := p.Marshal()

	var q Packet
	if err := q.DecodeFromBytes(buf[:3]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v", err)
	}
	if err := q.DecodeFromBytes(buf[:len(buf)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short body: %v", err)
	}

	bad := append([]byte(nil), buf...)
	bad[0] = 99
	if err := q.DecodeFromBytes(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}

	bad = append([]byte(nil), buf...)
	bad[1] = 0
	if err := q.DecodeFromBytes(bad); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad type 0: %v", err)
	}
	bad[1] = byte(typeMax)
	if err := q.DecodeFromBytes(bad); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad type max: %v", err)
	}
}

func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var p Packet
	for i := 0; i < 5000; i++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		_ = p.DecodeFromBytes(buf) // must not panic
	}
}

func TestMarshalValidation(t *testing.T) {
	p := samplePacket()
	p.Type = 0
	if _, err := p.Marshal(); !errors.Is(err, ErrBadType) {
		t.Fatalf("zero type: %v", err)
	}
	p = samplePacket()
	p.ASRoute = make([]uint32, MaxASRoute+1)
	if _, err := p.Marshal(); !errors.Is(err, ErrTooLong) {
		t.Fatalf("long route: %v", err)
	}
	p = samplePacket()
	p.Capability = make([]byte, MaxCapability+1)
	if _, err := p.Marshal(); !errors.Is(err, ErrTooLong) {
		t.Fatalf("long capability: %v", err)
	}
	p = samplePacket()
	p.Payload = make([]byte, 0x10000)
	if _, err := p.Marshal(); !errors.Is(err, ErrTooLong) {
		t.Fatalf("long payload: %v", err)
	}
}

func TestPushAS(t *testing.T) {
	var p Packet
	if err := p.PushAS(100); err != nil {
		t.Fatal(err)
	}
	if err := p.PushAS(100); err != nil { // duplicate collapsed
		t.Fatal(err)
	}
	if len(p.ASRoute) != 1 {
		t.Fatalf("route = %v", p.ASRoute)
	}
	if err := p.PushAS(200); err != nil {
		t.Fatal(err)
	}
	if !p.TraversedAS(100) || !p.TraversedAS(200) || p.TraversedAS(300) {
		t.Fatal("TraversedAS wrong")
	}
	p.ASRoute = make([]uint32, MaxASRoute)
	if err := p.PushAS(999); !errors.Is(err, ErrTooLong) {
		t.Fatalf("full route: %v", err)
	}
}

func TestDecodeReusesBuffers(t *testing.T) {
	p := samplePacket()
	buf, _ := p.Marshal()
	var q Packet
	q.ASRoute = make([]uint32, 0, 16)
	q.Payload = make([]byte, 0, 64)
	q.Capability = make([]byte, 0, 16)
	for i := 0; i < 3; i++ {
		if err := q.DecodeFromBytes(buf); err != nil {
			t.Fatal(err)
		}
	}
	if len(q.ASRoute) != 3 || len(q.Payload) != len(p.Payload) {
		t.Fatal("repeat decode corrupted state")
	}
	// Mutating the source buffer must not change the decoded packet.
	buf[len(buf)-1] ^= 0xff
	if q.Payload[len(q.Payload)-1] == buf[len(buf)-1] {
		t.Fatal("decoded payload aliases input buffer")
	}
}

func TestTypeString(t *testing.T) {
	for typ := TypeData; typ < typeMax; typ++ {
		if typ.String() == "" {
			t.Fatalf("type %d has no name", typ)
		}
	}
	if Type(200).String() != "type(200)" {
		t.Fatal("unknown type rendering wrong")
	}
}

func TestPacketString(t *testing.T) {
	if samplePacket().String() == "" {
		t.Fatal("String must render")
	}
}

func BenchmarkMarshal(b *testing.B) {
	p := samplePacket()
	buf := make([]byte, 0, p.EncodedLen())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		if _, err := p.AppendTo(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	p := samplePacket()
	buf, _ := p.Marshal()
	var q Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := q.DecodeFromBytes(buf); err != nil {
			b.Fatal(err)
		}
	}
}
