// Package wire defines ROFL's packet format and its binary encoding.
//
// A ROFL header carries no location information at all — only flat
// labels (paper §1). What it does carry, per §2.3 and §5.3, is:
//
//   - the destination and source identifiers;
//   - the AS-level source route accumulated so far, which routers compare
//     against their pointers' source routes with BGP-like import/export
//     rules to pick policy-compliant next hops;
//   - a flag recording that the packet already crossed a peering link
//     (bloom-filter peering forbids going up the hierarchy afterwards);
//   - an optional capability token authorizing the flow (§5.3).
//
// Encoding follows the gopacket convention: explicit SerializeTo /
// DecodeFromBytes with length-prefixed variable sections, no reflection,
// and decode errors that name the offending field.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rofl/internal/ident"
)

// Version is the format version emitted by this package.
const Version = 1

// Type discriminates packet kinds.
type Type uint8

// Packet kinds. Control kinds mirror the protocol messages of §3–§4.
const (
	TypeData Type = iota + 1
	TypeJoinRequest
	TypeJoinReply
	TypeTeardown
	TypeZeroID
	TypeCapRequest
	TypeCapGrant
	TypeAck
	// TypeStabilize asks a successor for its current predecessor
	// (Chord-style stabilization; used by the UDP overlay).
	TypeStabilize
	// TypeStabilizeReply answers with the predecessor pointer.
	TypeStabilizeReply
	// TypeLiveness is a BFD-style liveness probe (RFC 5880 echo of the
	// idea, not the bit layout): the payload advertises the sender's
	// desired transmit and required receive intervals plus its detect
	// multiplier, so the pair negotiates the probe rate.
	TypeLiveness
	// TypeLivenessReply answers a probe with the responder's own
	// interval advertisement.
	TypeLivenessReply
	typeMax
)

// String names the packet kind.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeJoinRequest:
		return "join-request"
	case TypeJoinReply:
		return "join-reply"
	case TypeTeardown:
		return "teardown"
	case TypeZeroID:
		return "zero-id"
	case TypeCapRequest:
		return "cap-request"
	case TypeCapGrant:
		return "cap-grant"
	case TypeAck:
		return "ack"
	case TypeStabilize:
		return "stabilize"
	case TypeStabilizeReply:
		return "stabilize-reply"
	case TypeLiveness:
		return "liveness"
	case TypeLivenessReply:
		return "liveness-reply"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Header flag bits.
const (
	// FlagPeered records that the packet traversed a peering link and may
	// no longer travel up the hierarchy (§4.2, bloom-filter peering).
	FlagPeered uint8 = 1 << iota
	// FlagBacktrack marks a packet returning from a bloom false positive.
	FlagBacktrack
)

// DefaultTTL bounds forwarding hops; greedy routing is loop-free in
// steady state but transients during churn justify a TTL.
const DefaultTTL = 255

// MaxASRoute bounds the AS-level source route length.
const MaxASRoute = 64

// MaxCapability bounds the capability token length.
const MaxCapability = 512

// Packet is a decoded ROFL packet.
type Packet struct {
	Type     Type
	Flags    uint8
	TTL      uint8
	Dst, Src ident.ID
	// ReqID correlates a control request with its reply: the requester
	// picks a locally-unique value, retransmits with the same value, and
	// the responder echoes it — making retried join/stabilize exchanges
	// idempotent and letting stale replies be discarded. Zero means
	// "unsolicited" (data packets, notifications).
	ReqID      uint64
	ASRoute    []uint32 // AS-level source route traversed so far
	Capability []byte   // optional capability token
	Payload    []byte
}

// fixed layout: version(1) type(1) flags(1) ttl(1) dst(16) src(16)
// reqID(8) asRouteLen(1) capLen(2) payloadLen(2)
const fixedHeaderLen = 4 + 2*ident.Size + 8 + 1 + 2 + 2

// Errors returned by DecodeFromBytes.
var (
	ErrTruncated  = errors.New("wire: truncated packet")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadType    = errors.New("wire: unknown packet type")
	ErrTooLong    = errors.New("wire: field exceeds limit")
	// ErrTrailing reports bytes after the declared payload: the encoding
	// is exact-length, so trailing garbage means a corrupt or hostile
	// datagram, not padding to be ignored.
	ErrTrailing = errors.New("wire: trailing bytes after packet")
)

// EncodedLen returns the exact size AppendTo will produce.
func (p *Packet) EncodedLen() int {
	return fixedHeaderLen + 4*len(p.ASRoute) + len(p.Capability) + len(p.Payload)
}

// AppendTo serializes the packet onto dst and returns the extended
// slice. It validates field limits before writing.
func (p *Packet) AppendTo(dst []byte) ([]byte, error) {
	if p.Type == 0 || p.Type >= typeMax {
		return nil, fmt.Errorf("%w: %d", ErrBadType, p.Type)
	}
	if len(p.ASRoute) > MaxASRoute {
		return nil, fmt.Errorf("%w: AS route %d > %d", ErrTooLong, len(p.ASRoute), MaxASRoute)
	}
	if len(p.Capability) > MaxCapability {
		return nil, fmt.Errorf("%w: capability %d > %d", ErrTooLong, len(p.Capability), MaxCapability)
	}
	if len(p.Payload) > 0xffff {
		return nil, fmt.Errorf("%w: payload %d > %d", ErrTooLong, len(p.Payload), 0xffff)
	}
	dst = append(dst, Version, byte(p.Type), p.Flags, p.TTL)
	dst = append(dst, p.Dst[:]...)
	dst = append(dst, p.Src[:]...)
	dst = binary.BigEndian.AppendUint64(dst, p.ReqID)
	dst = append(dst, byte(len(p.ASRoute)))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.Capability)))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.Payload)))
	for _, asn := range p.ASRoute {
		dst = binary.BigEndian.AppendUint32(dst, asn)
	}
	dst = append(dst, p.Capability...)
	dst = append(dst, p.Payload...)
	return dst, nil
}

// Marshal serializes into a fresh buffer. Hot senders that must not
// allocate use AppendTo with a pooled buffer instead; the fresh buffer
// here is Marshal's documented contract.
//
//rofllint:hotpath
func (p *Packet) Marshal() ([]byte, error) {
	return p.AppendTo(make([]byte, 0, p.EncodedLen())) //rofllint:ignore hotpath the fresh buffer is Marshal's contract; zero-alloc callers use AppendTo with a pooled buffer
}

// DecodeFromBytes parses b into p, copying the variable-length sections
// so p does not alias b after return. The encoding is exact-length:
// b must contain one whole packet and nothing else, or ErrTrailing is
// returned. Decoding reuses p's slice capacity, so a packet reused
// across datagrams decodes without allocating in steady state.
//
//rofllint:hotpath
func (p *Packet) DecodeFromBytes(b []byte) error {
	if len(b) < fixedHeaderLen {
		return fmt.Errorf("%w: %d < %d header bytes", ErrTruncated, len(b), fixedHeaderLen)
	}
	if b[0] != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, b[0])
	}
	typ := Type(b[1])
	if typ == 0 || typ >= typeMax {
		return fmt.Errorf("%w: %d", ErrBadType, b[1])
	}
	p.Type = typ
	p.Flags = b[2]
	p.TTL = b[3]
	copy(p.Dst[:], b[4:4+ident.Size])
	copy(p.Src[:], b[4+ident.Size:4+2*ident.Size])
	off := 4 + 2*ident.Size
	p.ReqID = binary.BigEndian.Uint64(b[off:])
	off += 8
	nRoute := int(b[off])
	off++
	if nRoute > MaxASRoute {
		return fmt.Errorf("%w: AS route %d > %d", ErrTooLong, nRoute, MaxASRoute)
	}
	nCap := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	if nCap > MaxCapability {
		return fmt.Errorf("%w: capability %d > %d", ErrTooLong, nCap, MaxCapability)
	}
	nPay := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	need := off + 4*nRoute + nCap + nPay
	if len(b) < need {
		return fmt.Errorf("%w: have %d bytes, need %d", ErrTruncated, len(b), need)
	}
	if len(b) > need {
		return fmt.Errorf("%w: %d bytes after the %d-byte packet", ErrTrailing, len(b)-need, need)
	}
	p.ASRoute = p.ASRoute[:0]
	for i := 0; i < nRoute; i++ {
		p.ASRoute = append(p.ASRoute, binary.BigEndian.Uint32(b[off:]))
		off += 4
	}
	p.Capability = append(p.Capability[:0], b[off:off+nCap]...)
	off += nCap
	p.Payload = append(p.Payload[:0], b[off:off+nPay]...)
	return nil
}

// Clone returns a deep copy of p: the copy shares no slice backing with
// the original, so it stays valid after the original is reused to
// decode the next datagram.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.ASRoute != nil {
		q.ASRoute = append(make([]uint32, 0, len(p.ASRoute)), p.ASRoute...)
	}
	if p.Capability != nil {
		q.Capability = append(make([]byte, 0, len(p.Capability)), p.Capability...)
	}
	if p.Payload != nil {
		q.Payload = append(make([]byte, 0, len(p.Payload)), p.Payload...)
	}
	return &q
}

// PushAS appends asn to the in-packet source route, as each AS does when
// relaying (§2.3: "it is marked with an AS-level source route denoting
// the path traversed until that point"). Consecutive duplicates are
// collapsed.
func (p *Packet) PushAS(asn uint32) error {
	if n := len(p.ASRoute); n > 0 && p.ASRoute[n-1] == asn {
		return nil
	}
	if len(p.ASRoute) >= MaxASRoute {
		return fmt.Errorf("%w: AS route full", ErrTooLong)
	}
	p.ASRoute = append(p.ASRoute, asn)
	return nil
}

// TraversedAS reports whether asn already appears in the source route —
// the loop check routers apply before relaying.
func (p *Packet) TraversedAS(asn uint32) bool {
	for _, a := range p.ASRoute {
		if a == asn {
			return true
		}
	}
	return false
}

// String renders a packet compactly for logs.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %s→%s ttl=%d route=%v", p.Type, p.Src.Short(), p.Dst.Short(), p.TTL, p.ASRoute)
}
